package cache

// MSHRFile models the miss-status holding registers of an L1 cache.
// Each entry tracks one outstanding line miss; secondary misses to the
// same line merge into the existing entry instead of issuing new memory
// requests. The fixed entry budget (Kmshr in the paper's Eq. 1) is the
// hardware lever that serialises concurrent misses: when all entries
// are busy a load cannot issue and its warp must retry, which is how
// the ⌈N·m/Kmshr⌉ latency growth of the analytical model emerges in
// the simulator.
type MSHRFile struct {
	capacity int
	entries  map[uint64]*MSHR

	// free recycles released entries (and their Waiters storage) so a
	// steady-state miss stream allocates nothing per fill; entries are
	// returned here by Recycle once the fill that released them is
	// fully processed.
	free []*MSHR

	// Cumulative counters.
	Allocs    int64 // primary misses (memory requests issued)
	Merges    int64 // secondary misses merged
	FullFails int64 // allocation attempts rejected because the file was full
	PeakUsed  int
}

// Waiter identifies a warp waiting on a missing line.
type Waiter struct {
	Sched int   // scheduler index within the SM
	Slot  int   // warp slot within the scheduler
	Token int64 // per-warp load token to locate the scoreboard entry
	Warp  int32 // global warp id, guards against slot recycling
}

// MSHR is one outstanding line miss.
type MSHR struct {
	LineAddr   uint64
	IssueCycle int64
	Pollute    bool // true if any merged requester had pollute privilege
	Warp       int32
	PC         int32
	Waiters    []Waiter
}

// NewMSHRFile builds a file with the given number of entries.
func NewMSHRFile(capacity int) *MSHRFile {
	if capacity < 1 {
		capacity = 1
	}
	return &MSHRFile{
		capacity: capacity,
		entries:  make(map[uint64]*MSHR, capacity),
		free:     make([]*MSHR, 0, capacity),
	}
}

// Capacity returns the entry budget.
func (f *MSHRFile) Capacity() int { return f.capacity }

// Used returns the number of live entries.
func (f *MSHRFile) Used() int { return len(f.entries) }

// Full reports whether no further primary miss can be tracked.
func (f *MSHRFile) Full() bool { return len(f.entries) >= f.capacity }

// Lookup returns the entry for lineAddr, or nil.
func (f *MSHRFile) Lookup(lineAddr uint64) *MSHR { return f.entries[lineAddr] }

// Allocate creates an entry for a primary miss. It returns nil if the
// file is full (the caller must make the warp retry).
func (f *MSHRFile) Allocate(lineAddr uint64, cycle int64, pollute bool, warp int32, pc int32, w Waiter) *MSHR {
	if f.Full() {
		f.FullFails++
		return nil
	}
	var m *MSHR
	if n := len(f.free); n > 0 {
		m = f.free[n-1]
		f.free = f.free[:n-1]
		m.Waiters = append(m.Waiters[:0], w)
		m.LineAddr = lineAddr
		m.IssueCycle = cycle
		m.Pollute = pollute
		m.Warp = warp
		m.PC = pc
	} else {
		m = &MSHR{
			LineAddr:   lineAddr,
			IssueCycle: cycle,
			Pollute:    pollute,
			Warp:       warp,
			PC:         pc,
			Waiters:    []Waiter{w},
		}
	}
	f.entries[lineAddr] = m
	f.Allocs++
	if len(f.entries) > f.PeakUsed {
		f.PeakUsed = len(f.entries)
	}
	return m
}

// Merge records a secondary miss on an existing entry. Pollute
// privilege is sticky: if any requester may allocate, the eventual fill
// allocates.
func (f *MSHRFile) Merge(m *MSHR, pollute bool, w Waiter) {
	m.Waiters = append(m.Waiters, w)
	if pollute {
		m.Pollute = true
	}
	f.Merges++
}

// Release removes the entry for lineAddr (on fill) and returns it.
// The caller owns the entry until it hands it back with Recycle.
func (f *MSHRFile) Release(lineAddr uint64) *MSHR {
	m := f.entries[lineAddr]
	if m != nil {
		delete(f.entries, lineAddr)
	}
	return m
}

// Recycle returns a released entry to the free pool for reuse by a
// later Allocate. The entry (including its Waiters slice) must no
// longer be referenced by the caller.
func (f *MSHRFile) Recycle(m *MSHR) {
	f.free = append(f.free, m)
}

// Reset drops all live entries (used between kernels).
func (f *MSHRFile) Reset() {
	for k := range f.entries {
		delete(f.entries, k)
	}
}

// Clear restores the file to its just-constructed state: no entries
// and zeroed counters. The GPU pool relies on Clear leaving state
// reflect.DeepEqual-identical to NewMSHRFile with the same capacity.
func (f *MSHRFile) Clear() {
	f.Reset()
	f.free = f.free[:0]
	f.Allocs, f.Merges, f.FullFails, f.PeakUsed = 0, 0, 0, 0
}
