package cache

import "testing"

func TestMSHRAllocateMergeRelease(t *testing.T) {
	f := NewMSHRFile(2)
	if f.Capacity() != 2 || f.Used() != 0 || f.Full() {
		t.Fatalf("fresh file wrong: cap=%d used=%d", f.Capacity(), f.Used())
	}
	m := f.Allocate(0x10, 100, true, 1, 0, Waiter{Sched: 0, Slot: 1, Token: 1, Warp: 1})
	if m == nil || f.Used() != 1 {
		t.Fatal("allocate failed")
	}
	if got := f.Lookup(0x10); got != m {
		t.Fatal("lookup must find the entry")
	}
	f.Merge(m, false, Waiter{Sched: 0, Slot: 2, Token: 3, Warp: 2})
	if len(m.Waiters) != 2 {
		t.Fatalf("waiters = %d, want 2", len(m.Waiters))
	}
	if !m.Pollute {
		t.Fatal("pollute must stay sticky-true")
	}
	rel := f.Release(0x10)
	if rel != m || f.Used() != 0 {
		t.Fatal("release failed")
	}
	if f.Release(0x10) != nil {
		t.Fatal("double release must return nil")
	}
}

func TestMSHRPolluteSticky(t *testing.T) {
	f := NewMSHRFile(2)
	m := f.Allocate(0x20, 1, false, 1, 0, Waiter{Token: 1})
	if m.Pollute {
		t.Fatal("non-pollute primary must start false")
	}
	f.Merge(m, true, Waiter{Token: 2})
	if !m.Pollute {
		t.Fatal("a polluting merge must upgrade the fill")
	}
}

func TestMSHRFullRejects(t *testing.T) {
	f := NewMSHRFile(1)
	if f.Allocate(0x1, 1, true, 1, 0, Waiter{}) == nil {
		t.Fatal("first allocate must succeed")
	}
	if !f.Full() {
		t.Fatal("file must be full")
	}
	if f.Allocate(0x2, 2, true, 1, 0, Waiter{}) != nil {
		t.Fatal("allocate on full file must fail")
	}
	if f.FullFails != 1 {
		t.Fatalf("FullFails = %d, want 1", f.FullFails)
	}
	f.Release(0x1)
	if f.Allocate(0x2, 3, true, 1, 0, Waiter{}) == nil {
		t.Fatal("allocate after release must succeed")
	}
}

func TestMSHRCounters(t *testing.T) {
	f := NewMSHRFile(4)
	m := f.Allocate(0x1, 1, true, 1, 0, Waiter{})
	f.Allocate(0x2, 1, true, 1, 0, Waiter{})
	f.Merge(m, true, Waiter{})
	if f.Allocs != 2 || f.Merges != 1 || f.PeakUsed != 2 {
		t.Fatalf("counters wrong: %+v", f)
	}
	f.Reset()
	if f.Used() != 0 {
		t.Fatal("reset must drop entries")
	}
}

func TestVictimTagsDetectLostLocality(t *testing.T) {
	v := NewVictimTags(2, 8)
	v.NoteEviction(3, 0x100)
	v.NoteMiss(3, 0x100)
	if v.TotalLost() != 1 {
		t.Fatalf("lost = %d, want 1", v.TotalLost())
	}
	// The tag is consumed: a second miss is not double-counted.
	v.NoteMiss(3, 0x100)
	if v.TotalLost() != 1 {
		t.Fatal("consumed tag must not re-fire")
	}
	// Another warp's miss on the same line is not this warp's loss.
	v.NoteEviction(4, 0x200)
	v.NoteMiss(5, 0x200)
	if v.TotalLost() != 1 {
		t.Fatal("cross-warp miss must not count")
	}
}

func TestVictimTagsRingOverwrite(t *testing.T) {
	v := NewVictimTags(2, 4)
	v.NoteEviction(0, 0x1)
	v.NoteEviction(0, 0x2)
	v.NoteEviction(0, 0x3) // overwrites 0x1
	v.NoteMiss(0, 0x1)
	if v.TotalLost() != 0 {
		t.Fatal("overwritten tag must be forgotten")
	}
	v.NoteMiss(0, 0x3)
	if v.TotalLost() != 1 {
		t.Fatal("recent tag must be remembered")
	}
}

func TestVictimDrain(t *testing.T) {
	v := NewVictimTags(4, 2)
	v.NoteEviction(0, 0x9)
	v.NoteMiss(0, 0x9)
	got := v.Drain()
	if got[0] != 1 {
		t.Fatalf("drain = %v", got)
	}
	if v.TotalLost() != 0 {
		t.Fatal("drain must reset counters")
	}
}

func TestVictimTagZeroLineAddr(t *testing.T) {
	// Line address 0 must be representable (tags are offset by 1).
	v := NewVictimTags(2, 2)
	v.NoteEviction(0, 0)
	v.NoteMiss(0, 0)
	if v.TotalLost() != 1 {
		t.Fatal("line 0 must be trackable")
	}
}
