package cache

import (
	"fmt"
	"sort"

	"poise/internal/snap"
)

// Checkpoint codecs for the cache layer (internal/snap payload
// fragments). Encode and Decode are asymmetric on purpose: geometry
// (config, capacities) is never serialised — the restoring side builds
// the cache from the same configuration and Decode verifies the sizes
// line up — so a snapshot can only be restored onto a structurally
// identical device, and the payload stays compact.

// maxWaiters bounds one MSHR entry's merged-waiter list on decode (a
// waiter per warp slot of a large SM is well under this).
const maxWaiters = 1 << 16

// EncodeState serialises Stats.
func (s *Stats) EncodeState(w *snap.Writer) {
	w.Varint(s.Accesses)
	w.Varint(s.Hits)
	w.Varint(s.IntraWarpHits)
	w.Varint(s.InterWarpHits)
	w.Varint(s.PolluteAccesses)
	w.Varint(s.PolluteHits)
	w.Varint(s.NoPollAccesses)
	w.Varint(s.NoPollHits)
	w.Varint(s.Evictions)
	w.Varint(s.Bypasses)
	w.Varint(s.Fills)
}

// DecodeState restores Stats written by EncodeState.
func (s *Stats) DecodeState(r *snap.Reader) {
	s.Accesses = r.Varint()
	s.Hits = r.Varint()
	s.IntraWarpHits = r.Varint()
	s.InterWarpHits = r.Varint()
	s.PolluteAccesses = r.Varint()
	s.PolluteHits = r.Varint()
	s.NoPollAccesses = r.Varint()
	s.NoPollHits = r.Varint()
	s.Evictions = r.Varint()
	s.Bypasses = r.Varint()
	s.Fills = r.Varint()
}

// EncodeState serialises the cache's mutable state: every line, the
// LRU clock, statistics, and the victim tag array when attached.
func (c *Cache) EncodeState(w *snap.Writer) {
	w.Uvarint(uint64(len(c.sets)))
	for i := range c.sets {
		l := &c.sets[i]
		w.Bool(l.valid)
		if !l.valid {
			continue // invalid lines carry no information
		}
		w.Uvarint(l.tag)
		w.Varint(int64(l.lastWarp))
		w.Varint(int64(l.lastPC))
		w.Uvarint(l.lruTick)
	}
	w.Uvarint(c.tick)
	c.Stats.EncodeState(w)
	if c.victim == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		c.victim.EncodeState(w)
	}
}

// DecodeState restores state written by EncodeState onto a cache with
// identical geometry.
func (c *Cache) DecodeState(r *snap.Reader) error {
	n := r.Uvarint()
	if r.Err() == nil && n != uint64(len(c.sets)) {
		return fmt.Errorf("cache: snapshot has %d lines, cache has %d", n, len(c.sets))
	}
	for i := range c.sets {
		l := &c.sets[i]
		if !r.Bool() {
			*l = line{}
			continue
		}
		l.valid = true
		l.tag = r.Uvarint()
		l.lastWarp = int32(r.Varint())
		l.lastPC = int32(r.Varint())
		l.lruTick = r.Uvarint()
	}
	c.tick = r.Uvarint()
	c.Stats.DecodeState(r)
	if r.Bool() {
		if c.victim == nil {
			c.victim = NewVictimTags(1, 1) // resized by DecodeState below
		}
		if err := c.victim.DecodeState(r); err != nil {
			return err
		}
	} else {
		c.victim = nil
	}
	return r.Err()
}

// EncodeState serialises the victim tag array.
func (v *VictimTags) EncodeState(w *snap.Writer) {
	w.Uvarint(uint64(v.perWarp))
	w.Uvarint(uint64(len(v.tags)))
	for i := range v.tags {
		for _, t := range v.tags[i] {
			w.Uvarint(t)
		}
		w.Varint(int64(v.next[i]))
		w.Varint(v.lost[i])
	}
}

// DecodeState restores a victim tag array, resizing to the snapshot's
// geometry (the policy that attached it owns the sizing decision, and
// it is part of the checkpointed policy state).
func (v *VictimTags) DecodeState(r *snap.Reader) error {
	perWarp := int(r.Uvarint())
	warps := int(r.Uvarint())
	if r.Err() != nil {
		return r.Err()
	}
	if perWarp < 1 || perWarp > 1<<20 || warps < 1 || warps > 1<<20 {
		return fmt.Errorf("cache: implausible victim tag geometry %dx%d", warps, perWarp)
	}
	if perWarp != v.perWarp || warps != len(v.tags) {
		*v = *NewVictimTags(perWarp, warps)
	}
	for i := range v.tags {
		for j := range v.tags[i] {
			v.tags[i][j] = r.Uvarint()
		}
		v.next[i] = int(r.Varint())
		v.lost[i] = r.Varint()
		if v.next[i] < 0 || v.next[i] >= perWarp {
			return fmt.Errorf("cache: victim ring cursor %d out of range", v.next[i])
		}
	}
	return r.Err()
}

// EncodeState serialises the MSHR file: live entries (sorted by line
// address, so the encoding is deterministic despite the map) and the
// cumulative counters. The free pool is not serialised — it only
// recycles allocations and has no behavioural effect.
func (f *MSHRFile) EncodeState(w *snap.Writer) {
	keys := make([]uint64, 0, len(f.entries))
	for k := range f.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		m := f.entries[k]
		w.Uvarint(m.LineAddr)
		w.Varint(m.IssueCycle)
		w.Bool(m.Pollute)
		w.Varint(int64(m.Warp))
		w.Varint(int64(m.PC))
		w.Uvarint(uint64(len(m.Waiters)))
		for _, wt := range m.Waiters {
			w.Varint(int64(wt.Sched))
			w.Varint(int64(wt.Slot))
			w.Varint(wt.Token)
			w.Varint(int64(wt.Warp))
		}
	}
	w.Varint(f.Allocs)
	w.Varint(f.Merges)
	w.Varint(f.FullFails)
	w.Varint(int64(f.PeakUsed))
}

// DecodeState restores an MSHR file written by EncodeState. The free
// pool is emptied: restored entries allocate fresh storage on the next
// miss, which is behaviourally identical.
func (f *MSHRFile) DecodeState(r *snap.Reader) error {
	n := int(r.Uvarint())
	if r.Err() != nil {
		return r.Err()
	}
	if n > f.capacity {
		return fmt.Errorf("cache: snapshot has %d MSHR entries, capacity %d", n, f.capacity)
	}
	for k := range f.entries {
		delete(f.entries, k)
	}
	f.free = f.free[:0]
	for i := 0; i < n; i++ {
		m := &MSHR{}
		m.LineAddr = r.Uvarint()
		m.IssueCycle = r.Varint()
		m.Pollute = r.Bool()
		m.Warp = int32(r.Varint())
		m.PC = int32(r.Varint())
		nw := r.Count(maxWaiters)
		for j := 0; j < nw; j++ {
			m.Waiters = append(m.Waiters, Waiter{
				Sched: int(r.Varint()),
				Slot:  int(r.Varint()),
				Token: r.Varint(),
				Warp:  int32(r.Varint()),
			})
		}
		if r.Err() != nil {
			return r.Err()
		}
		f.entries[m.LineAddr] = m
	}
	f.Allocs = r.Varint()
	f.Merges = r.Varint()
	f.FullFails = r.Varint()
	f.PeakUsed = int(r.Varint())
	return r.Err()
}
