// Package cache implements the set-associative caches of the simulated
// GPU: the per-SM L1 data cache (with MSHRs, the pollute-bit
// allocate-or-bypass policy that PCAL/Poise rely on, per-line last-warp
// tracking for intra-/inter-warp hit accounting, and optional victim
// tags for CCWS) and the banked shared L2.
package cache

import (
	"fmt"
	"math/bits"

	"poise/internal/config"
)

// Stats accumulates access counters. All fields are cumulative; callers
// sample windows by snapshotting and subtracting.
type Stats struct {
	Accesses int64
	Hits     int64
	// Hit split by reuse origin: a hit is intra-warp when the accessing
	// warp is the last warp that touched the line, inter-warp otherwise.
	IntraWarpHits int64
	InterWarpHits int64
	// Split by the accessing warp's pollute privilege at access time.
	PolluteAccesses int64
	PolluteHits     int64
	NoPollAccesses  int64
	NoPollHits      int64

	Evictions int64
	Bypasses  int64 // misses that did not reserve a line
	Fills     int64
}

// Sub returns s - o field-wise (window delta).
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Accesses:        s.Accesses - o.Accesses,
		Hits:            s.Hits - o.Hits,
		IntraWarpHits:   s.IntraWarpHits - o.IntraWarpHits,
		InterWarpHits:   s.InterWarpHits - o.InterWarpHits,
		PolluteAccesses: s.PolluteAccesses - o.PolluteAccesses,
		PolluteHits:     s.PolluteHits - o.PolluteHits,
		NoPollAccesses:  s.NoPollAccesses - o.NoPollAccesses,
		NoPollHits:      s.NoPollHits - o.NoPollHits,
		Evictions:       s.Evictions - o.Evictions,
		Bypasses:        s.Bypasses - o.Bypasses,
		Fills:           s.Fills - o.Fills,
	}
}

// HitRate returns Hits/Accesses (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// IntraWarpHitRate returns intra-warp hits over all accesses — the
// paper's η.
func (s Stats) IntraWarpHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.IntraWarpHits) / float64(s.Accesses)
}

// PolluteHitRate returns the hit rate of polluting warps (hp).
func (s Stats) PolluteHitRate() float64 {
	if s.PolluteAccesses == 0 {
		return 0
	}
	return float64(s.PolluteHits) / float64(s.PolluteAccesses)
}

// NoPollHitRate returns the hit rate of non-polluting warps (hnp).
func (s Stats) NoPollHitRate() float64 {
	if s.NoPollAccesses == 0 {
		return 0
	}
	return float64(s.NoPollHits) / float64(s.NoPollAccesses)
}

type line struct {
	tag      uint64
	valid    bool
	lastWarp int32 // global warp id of the last toucher
	lastPC   int32 // body index of the last touching instruction
	lruTick  uint64
}

// Cache is one set-associative cache array. It is a pure tag/state
// model: timing lives in the simulator's queueing network.
type Cache struct {
	cfg      config.CacheConfig
	sets     []line // sets*ways, row-major by set
	ways     int
	setCount int
	setShift uint   // log2(line bytes)
	setMask  uint64 // sets-1 when sets is a power of two, else 0
	pow2     bool
	tick     uint64

	Stats Stats

	victim *VictimTags // optional, enabled for CCWS
}

// New builds a cache from the geometry in cfg. The geometry must be
// valid (see config.CacheConfig.Validate).
func New(cfg config.CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	pow2 := sets&(sets-1) == 0
	c := &Cache{
		cfg:      cfg,
		sets:     make([]line, sets*cfg.Ways),
		ways:     cfg.Ways,
		setCount: sets,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		pow2:     pow2,
	}
	if pow2 {
		c.setMask = uint64(sets - 1)
	}
	return c, nil
}

// EnableVictimTags attaches a victim tag array with the given number of
// entries per warp (CCWS's lost-locality detector).
func (c *Cache) EnableVictimTags(entriesPerWarp, warps int) {
	c.victim = NewVictimTags(entriesPerWarp, warps)
}

// Victim returns the victim tag array, or nil.
func (c *Cache) Victim() *VictimTags { return c.victim }

// LineAddr reduces a byte address to its line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.setShift }

func (c *Cache) setIndex(lineAddr uint64) uint64 {
	switch c.cfg.Index {
	case config.IndexHash:
		// xor-fold the upper address bits into the set index; mirrors
		// the baseline GPU's hashed set index that spreads power-of-two
		// strides across sets.
		h := lineAddr
		h ^= h >> 10
		h ^= h >> 20
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 32
		if c.pow2 {
			return h & c.setMask
		}
		return h % uint64(c.setCount)
	default:
		if c.pow2 {
			return lineAddr & c.setMask
		}
		return lineAddr % uint64(c.setCount)
	}
}

// Result describes the outcome of a Lookup.
type Result struct {
	Hit bool
	// IntraWarp is set on hits whose previous toucher was the same warp.
	IntraWarp bool
}

// Lookup probes the cache for the line containing addr, accessed by the
// given global warp id at body position pc with the given pollute
// privilege. On a hit it updates LRU and last-toucher state. It never
// allocates: misses are filled later via Fill (after the memory system
// responds) so that MSHR merging behaves naturally.
func (c *Cache) Lookup(addr uint64, warp int32, pc int32, pollute bool) Result {
	la := c.LineAddr(addr)
	set := c.setIndex(la)
	base := int(set) * c.ways
	c.tick++
	c.Stats.Accesses++
	if pollute {
		c.Stats.PolluteAccesses++
	} else {
		c.Stats.NoPollAccesses++
	}
	for i := base; i < base+c.ways; i++ {
		l := &c.sets[i]
		if l.valid && l.tag == la {
			c.Stats.Hits++
			intra := l.lastWarp == warp
			if intra {
				c.Stats.IntraWarpHits++
			} else {
				c.Stats.InterWarpHits++
			}
			if pollute {
				c.Stats.PolluteHits++
			} else {
				c.Stats.NoPollHits++
			}
			l.lruTick = c.tick
			l.lastWarp = warp
			l.lastPC = pc
			return Result{Hit: true, IntraWarp: intra}
		}
	}
	if c.victim != nil {
		// A miss that matches this warp's victim tags is lost intra-warp
		// locality: CCWS's feedback signal.
		c.victim.NoteMiss(warp, la)
	}
	return Result{}
}

// Contains reports whether the line holding addr is resident, without
// touching LRU or statistics (used by policies peeking at state).
func (c *Cache) Contains(addr uint64) bool {
	la := c.LineAddr(addr)
	base := int(c.setIndex(la)) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.sets[i].valid && c.sets[i].tag == la {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr after a miss response. When
// allocate is false (non-polluting requester, or a bypass decision from
// a cache-management policy) the line is not installed and the fill is
// counted as a bypass. The evicted line's tag, if any, is pushed to the
// victim tag array of the warp that owned it.
func (c *Cache) Fill(addr uint64, warp int32, pc int32, allocate bool) {
	if !allocate {
		c.Stats.Bypasses++
		return
	}
	la := c.LineAddr(addr)
	set := c.setIndex(la)
	base := int(set) * c.ways
	c.tick++
	// Already present (merged fill raced with another): refresh only.
	for i := base; i < base+c.ways; i++ {
		l := &c.sets[i]
		if l.valid && l.tag == la {
			l.lruTick = c.tick
			return
		}
	}
	// Victim choice: first invalid way, else true LRU.
	var lru *line
	for i := base; i < base+c.ways; i++ {
		l := &c.sets[i]
		if !l.valid {
			lru = l
			break
		}
		if lru == nil || l.lruTick < lru.lruTick {
			lru = l
		}
	}
	if lru.valid {
		c.Stats.Evictions++
		if c.victim != nil {
			c.victim.NoteEviction(lru.lastWarp, lru.tag)
		}
	}
	c.Stats.Fills++
	*lru = line{tag: la, valid: true, lastWarp: warp, lastPC: pc, lruTick: c.tick}
}

// Reset restores the cache to its just-constructed state: all lines
// invalid, LRU clock and statistics zeroed, victim tags detached. The
// GPU pool relies on Reset leaving state reflect.DeepEqual-identical
// to New with the same geometry.
func (c *Cache) Reset() {
	c.Flush()
	c.Stats = Stats{}
	c.victim = nil
}

// Flush invalidates all lines and resets the LRU clock. Statistics are
// preserved (callers snapshot/restore as needed).
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = line{}
	}
	c.tick = 0
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].valid {
			n++
		}
	}
	return n
}

// Geometry returns the configured geometry.
func (c *Cache) Geometry() config.CacheConfig { return c.cfg }

func (c *Cache) String() string {
	return fmt.Sprintf("cache{%dKB %d-way %d sets %s}",
		c.cfg.SizeBytes/1024, c.ways, c.setCount, c.cfg.Index)
}
