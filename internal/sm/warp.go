// Package sm models a streaming multiprocessor: warp contexts with
// load/use scoreboarding, the greedy-then-oldest (GTO) warp schedulers,
// and the vital/pollute bit mechanism of the modified scheduler in
// paper §VI-C. Instruction execution and memory timing live in package
// sim; this package owns warp state and arbitration.
package sm

import "math"

// NoDep marks a warp with no outstanding load dependency.
const NoDep = int64(math.MaxInt64)

// Pending tracks one outstanding load of a warp.
type Pending struct {
	Token    int64 // per-warp monotonic id, referenced by MSHR waiters
	DepFlat  int64 // flattened instruction index of the dependent use
	RetCycle int64 // known return cycle for L1 hits; 0 while a miss is outstanding
	Done     bool
}

// Warp is one warp context in a scheduler slot.
type Warp struct {
	Active bool // slot occupied by a live warp

	Global    int32 // global warp id (unique in the launch)
	Block     int32
	WarpInBlk int32

	Iter       int32 // current loop iteration
	TotalIters int32
	BodyIdx    int32 // next instruction within the body
	FlatIdx    int64 // Iter*len(body)+BodyIdx, used for dependences

	ReadyAt int64 // earliest cycle the warp may issue (pipeline/replay)
	Age     int64 // dispatch order; smaller = older (GTO priority)

	Vital   bool // may be scheduled (one of the N oldest)
	Pollute bool // loads may allocate in L1 (one of the p oldest)

	Pend     []Pending
	tokenSeq int64
}

// NewToken mints a load token for this warp.
func (w *Warp) NewToken() int64 {
	w.tokenSeq++
	return w.tokenSeq
}

// AddPending registers an outstanding load.
func (w *Warp) AddPending(p Pending) { w.Pend = append(w.Pend, p) }

// ResolveToken marks the pending load with the given token complete.
// It reports whether the token was found.
func (w *Warp) ResolveToken(token int64) bool {
	for i := range w.Pend {
		if w.Pend[i].Token == token {
			w.Pend[i].Done = true
			return true
		}
	}
	return false
}

// depBlocked reports whether the warp's next instruction depends on an
// outstanding load, lazily retiring completed entries.
func (w *Warp) depBlocked(now int64) bool {
	blocked := false
	live := w.Pend[:0]
	for i := range w.Pend {
		p := w.Pend[i]
		if !p.Done && p.RetCycle != 0 && p.RetCycle <= now {
			p.Done = true
		}
		if p.Done {
			continue
		}
		if w.FlatIdx >= p.DepFlat {
			blocked = true
		}
		live = append(live, p)
	}
	w.Pend = live
	return blocked
}

// CanIssue reports whether the warp may issue at cycle now. Vitality is
// checked by the scheduler, not here.
func (w *Warp) CanIssue(now int64) bool {
	if !w.Active || now < w.ReadyAt {
		return false
	}
	if len(w.Pend) == 0 {
		return true
	}
	return !w.depBlocked(now)
}

// NextWake returns the earliest future cycle at which this warp could
// become issueable again, or NoDep if that depends on an MSHR fill
// event (unknown here). Used by the simulator's idle skip-ahead.
func (w *Warp) NextWake(now int64) int64 {
	if !w.Active {
		return NoDep
	}
	wake := w.ReadyAt
	if wake <= now {
		wake = now + 1
	}
	if len(w.Pend) == 0 {
		return wake
	}
	if !w.depBlocked(now) {
		return wake
	}
	// Blocked on a load: earliest known return, or unknown (miss).
	earliest := NoDep
	for i := range w.Pend {
		p := &w.Pend[i]
		if p.Done || w.FlatIdx < p.DepFlat {
			continue
		}
		if p.RetCycle == 0 {
			return NoDep // miss outstanding: an MSHR event will wake us
		}
		if p.RetCycle < earliest {
			earliest = p.RetCycle
		}
	}
	if earliest < wake {
		return wake
	}
	return earliest
}

// Advance moves the warp to the next instruction; bodyLen is the kernel
// body length. It reports whether the warp just finished its last
// instruction.
func (w *Warp) Advance(bodyLen int) bool {
	w.BodyIdx++
	w.FlatIdx++
	if int(w.BodyIdx) >= bodyLen {
		w.BodyIdx = 0
		w.Iter++
		if w.Iter >= w.TotalIters {
			return true
		}
	}
	return false
}

// Reset clears the slot for reuse.
func (w *Warp) Reset() {
	*w = Warp{}
}
