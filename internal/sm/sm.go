package sm

import (
	"poise/internal/cache"
	"poise/internal/config"
)

// Counters are the per-SM performance counters Poise's hardware
// inference engine samples (paper §VII-I budgets seven 32-bit counters
// per SM; we keep a few extra for experiment reporting). All values are
// cumulative; callers take window deltas with Sub.
type Counters struct {
	Instructions int64
	Loads        int64
	Stores       int64

	// AML accumulation over completed L1 misses: latency from miss issue
	// to data return at the SM.
	AMLSum   int64
	AMLCount int64

	// MSHR backpressure: load issue attempts rejected with a full file.
	Replays int64

	// L1 hit returns used by the latency-weighted busy model.
	HitReturns int64
}

// Sub returns c - o field-wise.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Instructions: c.Instructions - o.Instructions,
		Loads:        c.Loads - o.Loads,
		Stores:       c.Stores - o.Stores,
		AMLSum:       c.AMLSum - o.AMLSum,
		AMLCount:     c.AMLCount - o.AMLCount,
		Replays:      c.Replays - o.Replays,
		HitReturns:   c.HitReturns - o.HitReturns,
	}
}

// AML returns the mean L1 miss latency in the counted window, or 0.
func (c Counters) AML() float64 {
	if c.AMLCount == 0 {
		return 0
	}
	return float64(c.AMLSum) / float64(c.AMLCount)
}

// InstrPerLoad returns the dynamic In metric: instructions per global
// load. Returns a large value when no load was issued (compute-bound).
func (c Counters) InstrPerLoad() float64 {
	if c.Loads == 0 {
		if c.Instructions == 0 {
			return 0
		}
		return float64(c.Instructions)
	}
	return float64(c.Instructions) / float64(c.Loads)
}

// SM is one streaming multiprocessor: its schedulers, private L1 and
// MSHR file, and counters.
type SM struct {
	ID     int
	Scheds []*Scheduler
	L1     *cache.Cache
	MSHR   *cache.MSHRFile

	C Counters

	// Per-body-position load statistics for instruction-locality
	// policies (APCM). Sized to the running kernel's body.
	PCLoads []int64
	PCHits  []int64
	// BypassPC, when non-nil, marks body positions whose load misses
	// must not allocate L1 lines (APCM's streaming filter).
	BypassPC []bool

	// ReplayQ holds warps whose loads were rejected by a full MSHR
	// file. Each MSHR release wakes the head of the queue, so replay is
	// event-driven (no polling).
	ReplayQ []cache.Waiter
}

// NewSM builds an SM for the configuration.
func NewSM(id int, cfg config.Config) (*SM, error) {
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, err
	}
	s := &SM{
		ID:   id,
		L1:   l1,
		MSHR: cache.NewMSHRFile(cfg.L1.MSHRs),
	}
	for i := 0; i < cfg.SchedulersPerSM; i++ {
		s.Scheds = append(s.Scheds, NewScheduler(i, cfg.WarpsPerSched))
	}
	return s, nil
}

// Reset restores the SM to its just-constructed state: schedulers,
// L1, MSHR file, counters and per-kernel tables all as NewSM left
// them. The GPU pool relies on Reset leaving state
// reflect.DeepEqual-identical to fresh construction (nil per-kernel
// tables rather than emptied ones), so reusing a pooled SM can never
// perturb a simulation.
func (s *SM) Reset() {
	for _, sch := range s.Scheds {
		sch.Reset()
	}
	s.L1.Reset()
	s.MSHR.Clear()
	s.C = Counters{}
	s.PCLoads = nil
	s.PCHits = nil
	s.BypassPC = nil
	s.ReplayQ = nil
}

// SetTuple applies the warp-tuple to every scheduler of this SM.
func (s *SM) SetTuple(n, p int) {
	for _, sch := range s.Scheds {
		sch.SetTuple(n, p)
	}
}

// Tuple returns the tuple of the first scheduler (the schedulers of an
// SM always share one tuple in our policies).
func (s *SM) Tuple() (n, p int) { return s.Scheds[0].Tuple() }

// ActiveWarps returns the live warp count across schedulers.
func (s *SM) ActiveWarps() int {
	n := 0
	for _, sch := range s.Scheds {
		n += sch.ActiveWarps()
	}
	return n
}

// PrepareKernel resets per-kernel state (PC tables sized to the body,
// MSHRs, L1 contents) before a kernel launch.
func (s *SM) PrepareKernel(bodyLen int) {
	s.PCLoads = make([]int64, bodyLen)
	s.PCHits = make([]int64, bodyLen)
	s.BypassPC = nil
	s.ReplayQ = s.ReplayQ[:0]
	s.MSHR.Reset()
	s.L1.Flush()
	for _, sch := range s.Scheds {
		sch.current = -1
	}
}

// RecordLoadPC accumulates the per-instruction-position load stats.
func (s *SM) RecordLoadPC(pc int32, hit bool) {
	if int(pc) >= len(s.PCLoads) {
		return
	}
	s.PCLoads[pc]++
	if hit {
		s.PCHits[pc]++
	}
}

// ShouldBypass reports whether APCM-style filtering forces the load at
// body position pc to bypass L1 allocation.
func (s *SM) ShouldBypass(pc int32) bool {
	return s.BypassPC != nil && int(pc) < len(s.BypassPC) && s.BypassPC[pc]
}
