package sm

import (
	"fmt"

	"poise/internal/cache"
	"poise/internal/snap"
)

// waiterFrom decodes one cache.Waiter (fields are read left to right,
// matching the encode order).
func waiterFrom(r *snap.Reader) cache.Waiter {
	return cache.Waiter{
		Sched: int(r.Varint()),
		Slot:  int(r.Varint()),
		Token: r.Varint(),
		Warp:  int32(r.Varint()),
	}
}

// Checkpoint codecs for the SM layer. Structure (slot counts,
// scheduler counts, L1 geometry) comes from the configuration the
// restoring GPU was built with; only mutable state crosses the wire,
// and Decode verifies the shapes line up.

// maxBody bounds the per-kernel PC-table length on decode.
const maxBody = 1 << 20

// maxPending bounds one warp's outstanding-load scoreboard.
const maxPending = 1 << 16

// maxReplayQ bounds the SM replay queue (a few waiters per warp slot
// at worst).
const maxReplayQ = 1 << 20

// EncodeState serialises the counters.
func (c *Counters) EncodeState(w *snap.Writer) {
	w.Varint(c.Instructions)
	w.Varint(c.Loads)
	w.Varint(c.Stores)
	w.Varint(c.AMLSum)
	w.Varint(c.AMLCount)
	w.Varint(c.Replays)
	w.Varint(c.HitReturns)
}

// DecodeState restores counters written by EncodeState.
func (c *Counters) DecodeState(r *snap.Reader) {
	c.Instructions = r.Varint()
	c.Loads = r.Varint()
	c.Stores = r.Varint()
	c.AMLSum = r.Varint()
	c.AMLCount = r.Varint()
	c.Replays = r.Varint()
	c.HitReturns = r.Varint()
}

// encodeState serialises one warp slot verbatim, including inactive
// slots' stale contents — a restored scheduler must be bit-equivalent
// to the live one, and stale slots participate in nothing but are part
// of that equivalence.
func (wp *Warp) encodeState(w *snap.Writer) {
	w.Bool(wp.Active)
	w.Varint(int64(wp.Global))
	w.Varint(int64(wp.Block))
	w.Varint(int64(wp.WarpInBlk))
	w.Varint(int64(wp.Iter))
	w.Varint(int64(wp.TotalIters))
	w.Varint(int64(wp.BodyIdx))
	w.Varint(wp.FlatIdx)
	w.Varint(wp.ReadyAt)
	w.Varint(wp.Age)
	w.Bool(wp.Vital)
	w.Bool(wp.Pollute)
	w.Uvarint(uint64(len(wp.Pend)))
	for _, p := range wp.Pend {
		w.Varint(p.Token)
		w.Varint(p.DepFlat)
		w.Varint(p.RetCycle)
		w.Bool(p.Done)
	}
	w.Varint(wp.tokenSeq)
}

func (wp *Warp) decodeState(r *snap.Reader) error {
	wp.Active = r.Bool()
	wp.Global = int32(r.Varint())
	wp.Block = int32(r.Varint())
	wp.WarpInBlk = int32(r.Varint())
	wp.Iter = int32(r.Varint())
	wp.TotalIters = int32(r.Varint())
	wp.BodyIdx = int32(r.Varint())
	wp.FlatIdx = r.Varint()
	wp.ReadyAt = r.Varint()
	wp.Age = r.Varint()
	wp.Vital = r.Bool()
	wp.Pollute = r.Bool()
	n := r.Count(maxPending)
	wp.Pend = wp.Pend[:0]
	for i := 0; i < n; i++ {
		wp.Pend = append(wp.Pend, Pending{
			Token:    r.Varint(),
			DepFlat:  r.Varint(),
			RetCycle: r.Varint(),
			Done:     r.Bool(),
		})
	}
	if len(wp.Pend) == 0 {
		wp.Pend = nil // match the post-Reset zero value
	}
	wp.tokenSeq = r.Varint()
	return r.Err()
}

// EncodeState serialises the scheduler: warp slots, age order, greedy
// pointer, tuple, wake hint and the cumulative issue/stall/idle
// counters (which persist across the kernels of a workload).
func (s *Scheduler) EncodeState(w *snap.Writer) {
	w.Uvarint(uint64(len(s.Slots)))
	for i := range s.Slots {
		s.Slots[i].encodeState(w)
	}
	w.Uvarint(uint64(len(s.ageOrder)))
	for _, v := range s.ageOrder {
		w.Varint(int64(v))
	}
	w.Varint(s.dispatchSeq)
	w.Varint(int64(s.current))
	w.Varint(int64(s.n))
	w.Varint(int64(s.p))
	w.Varint(s.wakeHint)
	w.Varint(s.IssueCycles)
	w.Varint(s.StallCycles)
	w.Varint(s.IdleCycles)
}

// DecodeState restores a scheduler written by EncodeState.
func (s *Scheduler) DecodeState(r *snap.Reader) error {
	n := r.Uvarint()
	if r.Err() == nil && n != uint64(len(s.Slots)) {
		return fmt.Errorf("sm: snapshot has %d warp slots, scheduler has %d", n, len(s.Slots))
	}
	for i := range s.Slots {
		if err := s.Slots[i].decodeState(r); err != nil {
			return err
		}
	}
	na := r.Count(len(s.Slots))
	s.ageOrder = s.ageOrder[:0]
	for i := 0; i < na; i++ {
		v := int(r.Varint())
		if v < 0 || v >= len(s.Slots) {
			return fmt.Errorf("sm: age-order slot %d out of range", v)
		}
		s.ageOrder = append(s.ageOrder, v)
	}
	if len(s.ageOrder) == 0 {
		s.ageOrder = nil // match Reset's zero value
	}
	s.dispatchSeq = r.Varint()
	s.current = int(r.Varint())
	s.n = int(r.Varint())
	s.p = int(r.Varint())
	s.wakeHint = r.Varint()
	s.IssueCycles = r.Varint()
	s.StallCycles = r.Varint()
	s.IdleCycles = r.Varint()
	if r.Err() != nil {
		return r.Err()
	}
	if s.current < -1 || s.current >= len(s.Slots) {
		return fmt.Errorf("sm: greedy pointer %d out of range", s.current)
	}
	if s.n < 1 || s.n > len(s.Slots) || s.p < 1 || s.p > s.n {
		return fmt.Errorf("sm: tuple (%d,%d) out of range", s.n, s.p)
	}
	return nil
}

// EncodeState serialises the SM: schedulers, L1 (with victim tags),
// MSHR file, counters, per-kernel PC tables, bypass marks and the
// replay queue.
func (s *SM) EncodeState(w *snap.Writer) {
	w.Uvarint(uint64(len(s.Scheds)))
	for _, sch := range s.Scheds {
		sch.EncodeState(w)
	}
	s.L1.EncodeState(w)
	s.MSHR.EncodeState(w)
	s.C.EncodeState(w)
	w.Uvarint(uint64(len(s.PCLoads)))
	for i := range s.PCLoads {
		w.Varint(s.PCLoads[i])
		w.Varint(s.PCHits[i])
	}
	if s.BypassPC == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		w.Uvarint(uint64(len(s.BypassPC)))
		for _, b := range s.BypassPC {
			w.Bool(b)
		}
	}
	w.Uvarint(uint64(len(s.ReplayQ)))
	for _, wt := range s.ReplayQ {
		w.Varint(int64(wt.Sched))
		w.Varint(int64(wt.Slot))
		w.Varint(wt.Token)
		w.Varint(int64(wt.Warp))
	}
}

// DecodeState restores an SM written by EncodeState.
func (s *SM) DecodeState(r *snap.Reader) error {
	n := r.Uvarint()
	if r.Err() == nil && n != uint64(len(s.Scheds)) {
		return fmt.Errorf("sm: snapshot has %d schedulers, SM has %d", n, len(s.Scheds))
	}
	for _, sch := range s.Scheds {
		if err := sch.DecodeState(r); err != nil {
			return err
		}
	}
	if err := s.L1.DecodeState(r); err != nil {
		return err
	}
	if err := s.MSHR.DecodeState(r); err != nil {
		return err
	}
	s.C.DecodeState(r)
	np := r.Count(maxBody)
	s.PCLoads = make([]int64, np)
	s.PCHits = make([]int64, np)
	for i := 0; i < np; i++ {
		s.PCLoads[i] = r.Varint()
		s.PCHits[i] = r.Varint()
	}
	if r.Bool() {
		nb := r.Count(maxBody)
		s.BypassPC = make([]bool, nb)
		for i := range s.BypassPC {
			s.BypassPC[i] = r.Bool()
		}
	} else {
		s.BypassPC = nil
	}
	nq := r.Count(maxReplayQ)
	s.ReplayQ = s.ReplayQ[:0]
	for i := 0; i < nq; i++ {
		s.ReplayQ = append(s.ReplayQ, waiterFrom(r))
	}
	return r.Err()
}
