package sm

// Scheduler is one greedy-then-oldest warp scheduler. It owns a fixed
// array of warp slots and the warp-tuple state {N, p}: the N oldest
// active warps carry the vital bit (may be arbitrated), the p oldest
// carry the pollute bit (their loads may allocate L1 lines). This is
// the modified GTO scheduler of paper Fig. 6.
type Scheduler struct {
	ID    int
	Slots []Warp

	ageOrder    []int // active slot indices, oldest (smallest Age) first
	dispatchSeq int64
	current     int // greedy warp slot, -1 when none

	n, p int // the warp-tuple; clamped to [1, len(Slots)] on use

	// wakeHint caches the earliest cycle at which a vital warp could
	// become issueable after a failed Pick, so blocked schedulers cost
	// O(1) per cycle instead of a full scan. NoDep means "blocked on
	// memory": only a fill event (which clears the hint) can help.
	wakeHint int64

	// Stats.
	IssueCycles int64 // cycles this scheduler issued an instruction
	StallCycles int64 // cycles it had active warps but none ready
	IdleCycles  int64 // cycles with no active warps at all
}

// NewScheduler builds a scheduler with capacity warp slots, initially
// running at maximum TLP (N = p = capacity).
func NewScheduler(id, capacity int) *Scheduler {
	s := &Scheduler{
		ID:      id,
		Slots:   make([]Warp, capacity),
		current: -1,
	}
	s.n, s.p = capacity, capacity
	return s
}

// Capacity returns the number of warp slots.
func (s *Scheduler) Capacity() int { return len(s.Slots) }

// Reset restores the scheduler to its just-constructed state: empty
// slots, maximum tuple, zeroed age order, greedy pointer and
// statistics. The GPU pool relies on Reset leaving state
// reflect.DeepEqual-identical to NewScheduler (which is why the small
// dynamic slices go back to nil instead of being truncated in place).
func (s *Scheduler) Reset() {
	for i := range s.Slots {
		s.Slots[i].Reset()
	}
	s.ageOrder = nil
	s.dispatchSeq = 0
	s.current = -1
	s.n, s.p = len(s.Slots), len(s.Slots)
	s.wakeHint = 0
	s.IssueCycles, s.StallCycles, s.IdleCycles = 0, 0, 0
}

// ActiveWarps returns the number of live warps.
func (s *Scheduler) ActiveWarps() int { return len(s.ageOrder) }

// Tuple returns the current {N, p} setting.
func (s *Scheduler) Tuple() (n, p int) { return s.n, s.p }

// SetTuple applies a warp-tuple. Values are clamped to [1, capacity]
// and p to at most n, mirroring the p <= N constraint of the paper.
func (s *Scheduler) SetTuple(n, p int) {
	c := len(s.Slots)
	if n < 1 {
		n = 1
	}
	if n > c {
		n = c
	}
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	s.n, s.p = n, p
	s.refreshBits()
}

// refreshBits recomputes vital/pollute bits from age order and {N, p}.
func (s *Scheduler) refreshBits() {
	for i, slot := range s.ageOrder {
		w := &s.Slots[slot]
		w.Vital = i < s.n
		w.Pollute = i < s.p
	}
	// If the greedy warp lost vitality, drop it.
	if s.current >= 0 && !s.Slots[s.current].Vital {
		s.current = -1
	}
	s.wakeHint = 0
}

// WakeHint returns the cached earliest-possible issue cycle (0 = none).
func (s *Scheduler) WakeHint() int64 { return s.wakeHint }

// SetWakeHint caches the next possible issue cycle after a failed Pick.
func (s *Scheduler) SetWakeHint(c int64) { s.wakeHint = c }

// ClearWakeHint invalidates the cache (a fill arrived for one of this
// scheduler's warps, or warp/tuple state changed).
func (s *Scheduler) ClearWakeHint() { s.wakeHint = 0 }

// AccountBlocked adds a span of blocked visits to the stall or idle
// counter in bulk. The dense reference engine increments StallCycles or
// IdleCycles once per visited cycle on every blocked scheduler; the
// ready-queue engine skips those visits entirely and settles the same
// arithmetic here when the span closes, so the counters stay
// bit-identical between the two engines.
func (s *Scheduler) AccountBlocked(visits int64, active bool) {
	if visits <= 0 {
		return
	}
	if active {
		s.StallCycles += visits
	} else {
		s.IdleCycles += visits
	}
}

// Launch places a new warp into a free slot and returns its slot index,
// or -1 if the scheduler is full.
func (s *Scheduler) Launch(global, block, warpInBlk int32, iters int) int {
	slot := -1
	for i := range s.Slots {
		if !s.Slots[i].Active {
			slot = i
			break
		}
	}
	if slot < 0 {
		return -1
	}
	s.dispatchSeq++
	w := &s.Slots[slot]
	w.Reset()
	w.Active = true
	w.Global = global
	w.Block = block
	w.WarpInBlk = warpInBlk
	w.TotalIters = int32(iters)
	w.Age = s.dispatchSeq
	s.ageOrder = append(s.ageOrder, slot)
	// Age order stays sorted because dispatchSeq is monotonic.
	s.refreshBits()
	return slot
}

// Retire removes the warp in the given slot (it finished).
func (s *Scheduler) Retire(slot int) {
	s.Slots[slot].Active = false
	for i, v := range s.ageOrder {
		if v == slot {
			s.ageOrder = append(s.ageOrder[:i], s.ageOrder[i+1:]...)
			break
		}
	}
	if s.current == slot {
		s.current = -1
	}
	s.refreshBits()
}

// Pick returns the slot of the warp to issue from at cycle now,
// following GTO: stay with the current warp while it can issue, else
// the oldest ready vital warp. Returns -1 when nothing can issue.
func (s *Scheduler) Pick(now int64) int {
	if s.current >= 0 {
		w := &s.Slots[s.current]
		if w.Active && w.Vital && w.CanIssue(now) {
			return s.current
		}
	}
	limit := s.n
	if limit > len(s.ageOrder) {
		limit = len(s.ageOrder)
	}
	for i := 0; i < limit; i++ {
		slot := s.ageOrder[i]
		if s.Slots[slot].CanIssue(now) {
			s.current = slot
			return slot
		}
	}
	return -1
}

// NextWake returns the earliest cycle any vital warp might become
// issueable, or NoDep when that is unknown (waiting on memory) or there
// are no vital warps.
func (s *Scheduler) NextWake(now int64) int64 {
	earliest := NoDep
	limit := s.n
	if limit > len(s.ageOrder) {
		limit = len(s.ageOrder)
	}
	for i := 0; i < limit; i++ {
		if wake := s.Slots[s.ageOrder[i]].NextWake(now); wake < earliest {
			earliest = wake
		}
	}
	return earliest
}

// OldestActive returns the slot of the oldest active warp, or -1.
func (s *Scheduler) OldestActive() int {
	if len(s.ageOrder) == 0 {
		return -1
	}
	return s.ageOrder[0]
}

// VitalCount returns how many active warps currently hold the vital bit.
func (s *Scheduler) VitalCount() int {
	if s.n < len(s.ageOrder) {
		return s.n
	}
	return len(s.ageOrder)
}
