package sm

import (
	"testing"

	"poise/internal/config"
)

func TestLaunchRetireAgeOrder(t *testing.T) {
	s := NewScheduler(0, 4)
	a := s.Launch(10, 0, 0, 5)
	b := s.Launch(11, 0, 1, 5)
	c := s.Launch(12, 0, 2, 5)
	if a < 0 || b < 0 || c < 0 {
		t.Fatal("launches must succeed")
	}
	if s.ActiveWarps() != 3 {
		t.Fatalf("ActiveWarps = %d", s.ActiveWarps())
	}
	if s.OldestActive() != a {
		t.Fatal("oldest must be the first launched")
	}
	s.Retire(a)
	if s.OldestActive() != b {
		t.Fatal("after retiring the oldest, the second becomes oldest")
	}
	d := s.Launch(13, 1, 0, 5)
	if d != a {
		t.Fatalf("freed slot %d should be reused, got %d", a, d)
	}
	// The recycled warp is youngest despite occupying the oldest slot.
	if s.OldestActive() != b {
		t.Fatal("slot reuse must not confuse age order")
	}
}

func TestLaunchFull(t *testing.T) {
	s := NewScheduler(0, 2)
	s.Launch(1, 0, 0, 1)
	s.Launch(2, 0, 1, 1)
	if s.Launch(3, 0, 2, 1) >= 0 {
		t.Fatal("full scheduler must reject launches")
	}
}

func TestVitalPolluteBits(t *testing.T) {
	s := NewScheduler(0, 4)
	slots := []int{
		s.Launch(1, 0, 0, 5),
		s.Launch(2, 0, 1, 5),
		s.Launch(3, 0, 2, 5),
		s.Launch(4, 0, 3, 5),
	}
	s.SetTuple(2, 1)
	vital, pollute := 0, 0
	for _, sl := range slots {
		if s.Slots[sl].Vital {
			vital++
		}
		if s.Slots[sl].Pollute {
			pollute++
		}
	}
	if vital != 2 || pollute != 1 {
		t.Fatalf("vital=%d pollute=%d, want 2/1", vital, pollute)
	}
	// The two oldest must be the vital ones.
	if !s.Slots[slots[0]].Vital || !s.Slots[slots[1]].Vital {
		t.Fatal("vital bits must go to the oldest warps")
	}
	if !s.Slots[slots[0]].Pollute || s.Slots[slots[1]].Pollute {
		t.Fatal("pollute bit must go to the single oldest")
	}
	// Retiring the oldest promotes the next warp into the vital set.
	s.Retire(slots[0])
	if !s.Slots[slots[2]].Vital {
		t.Fatal("vitality must cascade on retire")
	}
	if !s.Slots[slots[1]].Pollute {
		t.Fatal("pollute must cascade on retire")
	}
}

func TestSetTupleClamps(t *testing.T) {
	s := NewScheduler(0, 4)
	s.SetTuple(0, 0)
	if n, p := s.Tuple(); n != 1 || p != 1 {
		t.Fatalf("clamp low: (%d,%d)", n, p)
	}
	s.SetTuple(99, 99)
	if n, p := s.Tuple(); n != 4 || p != 4 {
		t.Fatalf("clamp high: (%d,%d)", n, p)
	}
	s.SetTuple(3, 4)
	if n, p := s.Tuple(); p > n {
		t.Fatalf("p must be clamped to n: (%d,%d)", n, p)
	}
}

func TestPickGreedyThenOldest(t *testing.T) {
	s := NewScheduler(0, 4)
	a := s.Launch(1, 0, 0, 5)
	b := s.Launch(2, 0, 1, 5)
	// First pick: the oldest ready warp.
	if got := s.Pick(0); got != a {
		t.Fatalf("Pick = %d, want oldest %d", got, a)
	}
	// Greedy: stays on the same warp while it can issue.
	if got := s.Pick(1); got != a {
		t.Fatal("greedy must stick with the current warp")
	}
	// Blocking the current warp falls back to the next oldest.
	s.Slots[a].ReadyAt = 100
	if got := s.Pick(2); got != b {
		t.Fatalf("Pick = %d, want fallback %d", got, b)
	}
	// When the older warp becomes ready again, greedy holds the newer
	// current warp (GTO resumes oldest only on a stall).
	if got := s.Pick(101); got != b {
		t.Fatal("greedy must hold current even when an older warp wakes")
	}
	s.Slots[b].ReadyAt = 200
	if got := s.Pick(102); got != a {
		t.Fatal("stalled current must yield to the oldest ready")
	}
}

func TestPickRespectsVitality(t *testing.T) {
	s := NewScheduler(0, 4)
	a := s.Launch(1, 0, 0, 5)
	b := s.Launch(2, 0, 1, 5)
	s.SetTuple(1, 1)
	s.Slots[a].ReadyAt = 1000 // the only vital warp is blocked
	if got := s.Pick(0); got != -1 {
		t.Fatalf("non-vital warp %d must not be scheduled (got %d)", b, got)
	}
}

func TestWarpDependencyBlocking(t *testing.T) {
	var w Warp
	w.Active = true
	w.FlatIdx = 10
	tok := w.NewToken()
	w.AddPending(Pending{Token: tok, DepFlat: 12})
	if !w.CanIssue(0) {
		t.Fatal("independent instructions may issue under an outstanding load")
	}
	w.FlatIdx = 12
	if w.CanIssue(0) {
		t.Fatal("reaching the dependent instruction must block")
	}
	if !w.ResolveToken(tok) {
		t.Fatal("token must resolve")
	}
	if !w.CanIssue(0) {
		t.Fatal("resolved load must unblock")
	}
}

func TestWarpHitReturnLazyResolve(t *testing.T) {
	var w Warp
	w.Active = true
	w.FlatIdx = 5
	w.AddPending(Pending{Token: w.NewToken(), DepFlat: 5, RetCycle: 30})
	if w.CanIssue(10) {
		t.Fatal("blocked until the hit returns")
	}
	if !w.CanIssue(30) {
		t.Fatal("hit return must lazily unblock")
	}
}

func TestWarpNextWake(t *testing.T) {
	var w Warp
	w.Active = true
	w.FlatIdx = 5
	w.AddPending(Pending{Token: 1, DepFlat: 5, RetCycle: 40})
	if got := w.NextWake(10); got != 40 {
		t.Fatalf("NextWake = %d, want 40", got)
	}
	w2 := Warp{Active: true, FlatIdx: 5}
	w2.AddPending(Pending{Token: 1, DepFlat: 5}) // miss outstanding
	if got := w2.NextWake(10); got != NoDep {
		t.Fatalf("NextWake = %d, want NoDep for a miss", got)
	}
	w3 := Warp{Active: true, ReadyAt: 25}
	if got := w3.NextWake(10); got != 25 {
		t.Fatalf("NextWake = %d, want ReadyAt", got)
	}
}

func TestWarpAdvance(t *testing.T) {
	w := Warp{Active: true, TotalIters: 2}
	bodyLen := 3
	for i := 0; i < 5; i++ {
		if w.Advance(bodyLen) {
			t.Fatalf("finished too early at step %d", i)
		}
	}
	if !w.Advance(bodyLen) {
		t.Fatal("must finish after 2 iterations x 3 instructions")
	}
}

func TestCountersSubAndDerived(t *testing.T) {
	a := Counters{Instructions: 100, Loads: 10, AMLSum: 500, AMLCount: 5}
	b := Counters{Instructions: 160, Loads: 20, AMLSum: 1500, AMLCount: 10}
	d := b.Sub(a)
	if d.Instructions != 60 || d.Loads != 10 {
		t.Fatalf("Sub wrong: %+v", d)
	}
	if d.AML() != 200 {
		t.Fatalf("AML = %v, want 200", d.AML())
	}
	if d.InstrPerLoad() != 6 {
		t.Fatalf("InstrPerLoad = %v, want 6", d.InstrPerLoad())
	}
	empty := Counters{Instructions: 50}
	if empty.InstrPerLoad() != 50 {
		t.Fatal("loadless window must report Instructions as In")
	}
}

func TestNewSM(t *testing.T) {
	cfg := config.Default().Scale(2)
	s, err := NewSM(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Scheds) != cfg.SchedulersPerSM {
		t.Fatalf("schedulers = %d", len(s.Scheds))
	}
	s.SetTuple(5, 2)
	if n, p := s.Tuple(); n != 5 || p != 2 {
		t.Fatalf("tuple = (%d,%d)", n, p)
	}
	s.PrepareKernel(7)
	if len(s.PCLoads) != 7 || len(s.PCHits) != 7 {
		t.Fatal("PC tables must size to the body")
	}
	s.RecordLoadPC(3, true)
	s.RecordLoadPC(3, false)
	if s.PCLoads[3] != 2 || s.PCHits[3] != 1 {
		t.Fatal("PC stats wrong")
	}
	if s.ShouldBypass(3) {
		t.Fatal("no filter installed yet")
	}
	s.BypassPC = make([]bool, 7)
	s.BypassPC[3] = true
	if !s.ShouldBypass(3) || s.ShouldBypass(2) {
		t.Fatal("bypass filter wrong")
	}
}
