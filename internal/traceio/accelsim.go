package traceio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"poise/internal/trace"
)

// ReadAccelSim parses a simplified Accel-Sim/GPGPU-Sim style kernel
// trace and converts it into a Trace. The supported layout is the
// subset of the Accel-Sim tracer's kernel-*.trace text format that the
// Poise kernel model consumes:
//
//	-kernel name = vecadd
//	-grid dim = (2,1,1)
//	-block dim = (64,1,1)
//
//	#BEGIN_TB
//	thread block = 0,0,0
//	warp = 0
//	insts = 4
//	0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100080
//	0010 ffffffff 1 R2 IADD 2 R1 R5
//	0018 ffffffff 0 STG.E 2 R1 R7 4 0x200000
//	...
//	#END_TB
//
// Instruction lines are "PC mask ndest [dest...] opcode nsrc [src...]"
// with memory ops (LD*/ST* opcodes) carrying a trailing access width
// and either one coalesced base address or — as the real tracer dumps
// uncoalesced accesses — one address per active lane, exactly
// popcount(mask) of them. Per-lane lists are coalesced within the
// instruction to their distinct cache lines in first-touch order, the
// same merge the hardware's coalescing unit performs, so a divergent
// gather becomes several stream entries and a unit-stride access
// stays one. Shared-memory ops (LDS/STS) use the same grammar but
// never leave the SM: their addresses are validated then dropped, and
// the op counts toward the ALU gap. Multiple kernel sections may
// appear in one stream (a new "-kernel name" line starts the next
// kernel); gzipped input is detected and unwrapped transparently.
//
// Mapping onto the loop-body model: each static memory PC becomes one
// pattern slot (first-appearance order); the i-th dynamic occurrence
// of that PC in a warp is the slot's access at iteration i, so a
// warp's iteration count is the occurrence count of its busiest PC.
// Non-memory instructions set the ALU gap of the synthesised body so
// the trace's instructions-per-load ratio (the paper's In) is
// preserved. Warps that never touch a slot replay a single null line.
func ReadAccelSim(r io.Reader, workload string) (*Trace, error) {
	br := bufio.NewReader(r)
	if hdr, err := br.Peek(2); err == nil && hdr[0] == 0x1f && hdr[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("traceio: gzip: %w", err)
		}
		defer gz.Close()
		br = bufio.NewReader(gz)
	}
	p := &accelParser{sc: bufio.NewScanner(br), workload: workload}
	p.sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return p.parse()
}

type accelKernel struct {
	name          string
	gridDim       [3]int
	gridBlocks    int
	warpsPerBlock int

	// slots maps a static memory PC to its slot index.
	slots     map[uint64]int
	slotOrder []uint64
	slotKind  []trace.OpKind

	// streams[slot][globalWarp]
	streams  map[int]map[int][]uint64
	aluCount int64
	memCount int64

	curBlock int // linearised block id, -1 outside a TB section
	curWarp  int // warp id within the block, -1 before a warp line
}

type accelParser struct {
	sc       *bufio.Scanner
	workload string
	line     int

	kernels []*accelKernel
	cur     *accelKernel
	// pending geometry, filled by metadata lines until the first
	// instruction section needs it.
	gridDim  [3]int
	blockDim [3]int
	name     string

	// lineBuf is the per-instruction coalescing scratch (≤ one line per
	// lane), reused across instruction lines.
	lineBuf []uint64
}

func (p *accelParser) errf(format string, args ...any) error {
	return fmt.Errorf("traceio: accel-sim line %d: "+format, append([]any{p.line}, args...)...)
}

func (p *accelParser) parse() (*Trace, error) {
	for p.sc.Scan() {
		p.line++
		line := strings.TrimSpace(p.sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "-"):
			if err := p.metadata(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "#"):
			// #BEGIN_TB / #END_TB and any other directive: block
			// boundaries are tracked via "thread block =" lines.
			if p.cur != nil && line == "#END_TB" {
				p.cur.curBlock, p.cur.curWarp = -1, -1
			}
			continue
		case strings.HasPrefix(line, "thread block"):
			if err := p.threadBlock(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "warp"):
			if err := p.warpLine(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "insts"):
			continue // per-warp instruction count: informational
		default:
			if err := p.instruction(line); err != nil {
				return nil, err
			}
		}
	}
	if err := p.sc.Err(); err != nil {
		return nil, fmt.Errorf("traceio: accel-sim: %w", err)
	}
	if err := p.finishKernel(); err != nil {
		return nil, err
	}
	if len(p.kernels) == 0 {
		return nil, fmt.Errorf("traceio: accel-sim: no kernel sections found")
	}
	t := &Trace{Name: p.workload}
	if t.Name == "" {
		t.Name = p.kernels[0].name
	}
	for _, ak := range p.kernels {
		kt, err := ak.kernelTrace()
		if err != nil {
			return nil, err
		}
		t.Kernels = append(t.Kernels, kt)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func (p *accelParser) metadata(line string) error {
	key, val, ok := strings.Cut(line[1:], "=")
	if !ok {
		return p.errf("metadata %q has no '='", line)
	}
	key, val = strings.TrimSpace(key), strings.TrimSpace(val)
	switch key {
	case "kernel name":
		if err := p.finishKernel(); err != nil {
			return err
		}
		p.name = val
	case "grid dim":
		return p.dim(val, &p.gridDim)
	case "block dim":
		return p.dim(val, &p.blockDim)
	}
	// Other metadata (-shmem, -nregs, ...) is irrelevant to the model.
	return nil
}

func (p *accelParser) dim(val string, out *[3]int) error {
	val = strings.TrimSuffix(strings.TrimPrefix(val, "("), ")")
	parts := strings.Split(val, ",")
	if len(parts) != 3 {
		return p.errf("dimension %q is not (x,y,z)", val)
	}
	for i, s := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			return p.errf("dimension component %q must be a positive integer", s)
		}
		out[i] = v
	}
	return nil
}

// ensureKernel materialises the current kernel once geometry is known.
func (p *accelParser) ensureKernel() (*accelKernel, error) {
	if p.cur != nil {
		return p.cur, nil
	}
	if p.name == "" {
		return nil, p.errf("instruction section before '-kernel name'")
	}
	if p.gridDim[0] == 0 || p.blockDim[0] == 0 {
		return nil, p.errf("kernel %s: instruction section before grid/block dims", p.name)
	}
	// Bound the geometry before any product can overflow or size an
	// allocation (same limit as the container format's validator).
	// boundedProduct caps every partial product, so the arithmetic
	// itself can never wrap whatever the components.
	blocks, ok := boundedProduct(p.gridDim, maxTotalWarps)
	threads, ok2 := boundedProduct(p.blockDim, 32*maxTotalWarps)
	warps := (threads + 31) / 32
	if !ok || !ok2 || int64(blocks)*int64(warps) > maxTotalWarps {
		return nil, p.errf("kernel %s: grid %v x block %v exceeds the %d-warp limit",
			p.name, p.gridDim, p.blockDim, maxTotalWarps)
	}
	p.cur = &accelKernel{
		name:          p.name,
		gridDim:       p.gridDim,
		gridBlocks:    blocks,
		warpsPerBlock: warps,
		slots:         map[uint64]int{},
		streams:       map[int]map[int][]uint64{},
		curBlock:      -1,
		curWarp:       -1,
	}
	return p.cur, nil
}

// boundedProduct multiplies the dimensions, reporting false as soon as
// a partial product exceeds limit — so it never overflows.
func boundedProduct(dim [3]int, limit int64) (int, bool) {
	prod := int64(1)
	for _, d := range dim {
		if d <= 0 || int64(d) > limit {
			return 0, false
		}
		prod *= int64(d)
		if prod > limit {
			return 0, false
		}
	}
	return int(prod), true
}

func (p *accelParser) finishKernel() error {
	if p.cur == nil {
		p.name, p.gridDim, p.blockDim = "", [3]int{}, [3]int{}
		return nil
	}
	p.kernels = append(p.kernels, p.cur)
	p.cur, p.name, p.gridDim, p.blockDim = nil, "", [3]int{}, [3]int{}
	return nil
}

func (p *accelParser) threadBlock(line string) error {
	k, err := p.ensureKernel()
	if err != nil {
		return err
	}
	_, val, ok := strings.Cut(line, "=")
	if !ok {
		return p.errf("thread block line %q has no '='", line)
	}
	parts := strings.Split(strings.TrimSpace(val), ",")
	if len(parts) != 3 {
		return p.errf("thread block %q is not x,y,z", val)
	}
	var b [3]int
	for i, s := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 {
			return p.errf("thread block component %q must be a non-negative integer", s)
		}
		b[i] = v
	}
	if b[0] >= k.gridDim[0] || b[1] >= k.gridDim[1] || b[2] >= k.gridDim[2] {
		return p.errf("thread block (%d,%d,%d) outside grid (%d,%d,%d)",
			b[0], b[1], b[2], k.gridDim[0], k.gridDim[1], k.gridDim[2])
	}
	k.curBlock = b[0] + b[1]*k.gridDim[0] + b[2]*k.gridDim[0]*k.gridDim[1]
	k.curWarp = -1
	return nil
}

func (p *accelParser) warpLine(line string) error {
	k, err := p.ensureKernel()
	if err != nil {
		return err
	}
	if k.curBlock < 0 {
		return p.errf("warp line outside a thread block section")
	}
	_, val, ok := strings.Cut(line, "=")
	if !ok {
		return p.errf("warp line %q has no '='", line)
	}
	w, err := strconv.Atoi(strings.TrimSpace(val))
	if err != nil || w < 0 || w >= k.warpsPerBlock {
		return p.errf("warp id %q outside [0,%d)", strings.TrimSpace(val), k.warpsPerBlock)
	}
	k.curWarp = w
	return nil
}

// isMemOpcode classifies an SASS opcode as a global load or store.
func isMemOpcode(op string) (trace.OpKind, bool) {
	switch {
	case strings.HasPrefix(op, "LDG"), strings.HasPrefix(op, "LD."), op == "LD",
		strings.HasPrefix(op, "LDL"):
		return trace.OpLoad, true
	case strings.HasPrefix(op, "STG"), strings.HasPrefix(op, "ST."), op == "ST",
		strings.HasPrefix(op, "STL"):
		return trace.OpStore, true
	}
	return trace.OpALU, false
}

// isSharedOpcode recognises shared-memory ops. They carry the same
// width/address tail as global ops but stay on-chip, outside the
// L1/L2/DRAM path the model simulates.
func isSharedOpcode(op string) bool {
	return strings.HasPrefix(op, "LDS") || strings.HasPrefix(op, "STS")
}

func (p *accelParser) instruction(line string) error {
	k, err := p.ensureKernel()
	if err != nil {
		return err
	}
	if k.curBlock < 0 || k.curWarp < 0 {
		return p.errf("instruction %q outside a warp section", line)
	}
	tok := strings.Fields(line)
	if len(tok) < 4 {
		return p.errf("instruction %q has %d fields, need at least PC mask ndest opcode", line, len(tok))
	}
	pc, err := parseHex(tok[0])
	if err != nil {
		return p.errf("bad PC %q: %v", tok[0], err)
	}
	mask, err := parseHex(tok[1])
	if err != nil {
		return p.errf("bad active mask %q: %v", tok[1], err)
	}
	ndest, err := strconv.Atoi(tok[2])
	if err != nil || ndest < 0 {
		return p.errf("bad dest-register count %q", tok[2])
	}
	i := 3 + ndest
	if i >= len(tok) {
		return p.errf("instruction %q truncated before opcode", line)
	}
	opcode := tok[i]
	i++
	kind, isMem := isMemOpcode(opcode)
	shared := isSharedOpcode(opcode)
	if !isMem && !shared {
		k.aluCount++
		return nil
	}
	// Skip "nsrc [src...]" when present, then expect "width address...".
	if i < len(tok) {
		if nsrc, err := strconv.Atoi(tok[i]); err == nil && nsrc >= 0 {
			i += 1 + nsrc
		}
	}
	if i+1 >= len(tok) {
		return p.errf("memory op %q missing width/address", line)
	}
	if _, err := strconv.Atoi(tok[i]); err != nil {
		return p.errf("memory op %q has bad access width %q", line, tok[i])
	}
	// One address is the tracer's coalesced form; otherwise the dump is
	// uncoalesced and must list exactly one address per active lane.
	addrToks := tok[i+1:]
	if lanes := bits.OnesCount64(mask); len(addrToks) != 1 && len(addrToks) != lanes {
		return p.errf("memory op %q has %d addresses for a %d-lane active mask",
			line, len(addrToks), lanes)
	}
	// Coalesce within the instruction: distinct cache lines in
	// first-touch order, the merge the hardware's coalescing unit
	// performs before the access reaches the memory system.
	lines := p.lineBuf[:0]
	for _, at := range addrToks {
		addr, err := parseHex(at)
		if err != nil {
			return p.errf("memory op %q has bad address %q: %v", line, at, err)
		}
		addr -= addr % trace.LineBytes
		dup := false
		for _, prev := range lines {
			if prev == addr {
				dup = true
				break
			}
		}
		if !dup {
			lines = append(lines, addr)
		}
	}
	p.lineBuf = lines[:0]
	if shared {
		// Validated but on-chip: contributes compute latency, no memory
		// traffic.
		k.aluCount++
		return nil
	}

	slot, ok := k.slots[pc]
	if !ok {
		slot = len(k.slotOrder)
		k.slots[pc] = slot
		k.slotOrder = append(k.slotOrder, pc)
		k.slotKind = append(k.slotKind, kind)
	}
	global := k.curBlock*k.warpsPerBlock + k.curWarp
	if k.streams[slot] == nil {
		k.streams[slot] = map[int][]uint64{}
	}
	k.streams[slot][global] = append(k.streams[slot][global], lines...)
	k.memCount++
	return nil
}

func parseHex(s string) (uint64, error) {
	s = strings.TrimPrefix(strings.ToLower(s), "0x")
	return strconv.ParseUint(s, 16, 64)
}

// kernelTrace converts the accumulated per-PC streams into the
// loop-body KernelTrace.
func (ak *accelKernel) kernelTrace() (*KernelTrace, error) {
	if ak.memCount == 0 {
		return nil, fmt.Errorf("traceio: accel-sim kernel %s: no memory instructions", ak.name)
	}
	total := ak.gridBlocks * ak.warpsPerBlock
	kt := &KernelTrace{
		Name:          ak.name,
		Slots:         len(ak.slotOrder),
		WarpsPerBlock: ak.warpsPerBlock,
		Blocks:        ak.gridBlocks,
		WarpIters:     make([]int, total),
	}

	// Slot order: by PC, so the synthesised body follows program order.
	order := make([]int, len(ak.slotOrder))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ak.slotOrder[order[a]] < ak.slotOrder[order[b]] })

	// ALU gap preserving the instructions-per-memory-op ratio (rounded
	// to nearest: floor division would bias In low by up to almost 1).
	gap := int((ak.aluCount + ak.memCount/2) / ak.memCount)
	b := &trace.BodyBuilder{}
	remap := make([]int, len(order)) // old slot -> new slot
	for newSlot, oldSlot := range order {
		remap[oldSlot] = newSlot
		if ak.slotKind[oldSlot] == trace.OpLoad {
			if s := b.Load(1); s != newSlot {
				return nil, fmt.Errorf("traceio: accel-sim kernel %s: slot bookkeeping mismatch", ak.name)
			}
		} else {
			if s := b.Store(); s != newSlot {
				return nil, fmt.Errorf("traceio: accel-sim kernel %s: slot bookkeeping mismatch", ak.name)
			}
		}
		b.ALU(gap)
	}
	kt.Body = b.Body()

	kt.Streams = make([][][]uint64, kt.Slots)
	for newSlot := range kt.Streams {
		kt.Streams[newSlot] = make([][]uint64, total)
	}
	for oldSlot, warps := range ak.streams {
		for g, stream := range warps {
			kt.Streams[remap[oldSlot]][g] = stream
		}
	}
	for g := 0; g < total; g++ {
		iters := 1
		for s := range kt.Streams {
			if n := len(kt.Streams[s][g]); n > iters {
				iters = n
			}
		}
		kt.WarpIters[g] = iters
		// A warp that never touched a slot replays a single null line;
		// the strict validator otherwise (rightly) rejects empty streams
		// on referenced slots.
		for s := range kt.Streams {
			if len(kt.Streams[s][g]) == 0 {
				kt.Streams[s][g] = []uint64{0}
			}
		}
	}
	return kt, nil
}
