package traceio

import (
	"bytes"
	"reflect"
	"testing"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/workloads"
)

// TestRecordReplayBitIdentical is the subsystem's headline guarantee:
// recording a catalogue workload and replaying the trace through the
// simulator reproduces the live synthetic run's metrics exactly —
// every cycle count, hit split and per-SM counter. bfs exercises the
// stochastic irregular patterns and iteration jitter; ii the
// deterministic private sweeps. Under -race only ii runs (the full
// pair costs ~10x there).
func TestRecordReplayBitIdentical(t *testing.T) {
	names := []string{"ii", "bfs"}
	if raceEnabled {
		names = []string{"ii"}
	}
	cfg := config.Default().Scale(2)
	cat := workloads.NewCatalogue(workloads.Small)
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			w := cat.Must(name)
			if raceEnabled {
				// The race detector slows the cycle engine ~10x; one
				// kernel of the workload still exercises the full
				// record→serialise→parse→replay pipeline.
				w = &sim.Workload{Name: w.Name, Kernels: w.Kernels[:1],
					MemorySensitive: w.MemorySensitive}
			}
			live, err := sim.RunWorkload(cfg, w, sim.GTO{}, sim.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}

			// Record, serialise, parse back, replay: the full pipeline,
			// not just the in-memory shortcut.
			tr := mustRecord(t, w)
			var buf bytes.Buffer
			if err := Write(&buf, tr, WriteOptions{Gzip: true}); err != nil {
				t.Fatal(err)
			}
			parsed, err := Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			replayW, err := parsed.Workload()
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := sim.RunWorkload(cfg, replayW, sim.GTO{}, sim.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(live, replayed) {
				t.Fatalf("replayed metrics differ from live run:\nlive:     %+v\nreplayed: %+v",
					summary(live), summary(replayed))
			}
		})
	}
}

// summary keeps the failure message readable; DeepEqual above still
// compares every field including per-kernel and per-SM counters.
func summary(r sim.WorkloadResult) map[string]any {
	return map[string]any{
		"cycles": r.Cycles, "instr": r.Instructions, "ipc": r.IPC,
		"l1acc": r.L1.Accesses, "l1hits": r.L1.Hits,
		"intra": r.L1.IntraWarpHits, "inter": r.L1.InterWarpHits,
		"dram": r.DRAMAcc, "l2": r.L2Acc, "aml": r.AML,
	}
}

// TestReplayUnderFixedPolicy re-checks the round trip under a
// throttled tuple, where scheduling (and hence SM placement) differs
// from GTO: address generation must be policy-independent.
func TestReplayUnderFixedPolicy(t *testing.T) {
	cfg := config.Default().Scale(1)
	w := miniWorkload()
	pol := sim.Fixed{N: 2, P: 1}
	live, err := sim.RunWorkload(cfg, w, pol, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	replayW, err := mustRecord(t, w).Workload()
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := sim.RunWorkload(cfg, replayW, pol, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("fixed-policy replay differs:\nlive:     %+v\nreplayed: %+v",
			summary(live), summary(replayed))
	}
}
