package traceio

import (
	"poise/internal/reuse"
	"poise/internal/trace"
)

// Signature is the locality fingerprint of a trace, in the vocabulary
// of the paper's workload analysis (§V-B, Fig. 4, Table IIIa): the
// instruction gap between global loads, the per-warp cache footprint,
// the reuse distance R, and how reuse splits between lines a warp
// fetched itself (intra) and lines other warps brought in (inter).
// Characterising an ingested trace slots it into the same profiling
// and sensitivity machinery as the calibrated synthetic catalogue.
type Signature struct {
	Workload string
	Kernels  int

	// In is the issue-weighted mean instructions-between-global-loads.
	In float64
	// FootprintLines is the mean number of distinct cache lines one
	// warp's loads touch.
	FootprintLines float64
	// ReuseDist is the mean LRU stack distance of a single warp's
	// dwell-collapsed load stream — the same R statistic the Fig. 4
	// experiment computes (consecutive touches of one line collapse
	// first, so R characterises distinct-line reuse, not element
	// strides). Averaged over a sample of warps, weighted by each
	// warp's finite-reuse count.
	ReuseDist float64
	// IntraPct/InterPct split line reuses of the round-robin
	// interleaved load stream by whether the previous toucher was the
	// same warp. They sum to 100 when any reuse exists.
	IntraPct float64
	InterPct float64

	// Accesses is the number of loads in the interleaved scan (after
	// the sampling cap); ColdPct is the fraction that were first
	// touches of their line.
	Accesses int64
	ColdPct  float64
}

// CharacteriseOptions tunes the profiling cost.
type CharacteriseOptions struct {
	// MaxAccesses caps, per kernel, both the interleaved intra/inter
	// scan and the per-warp reuse-distance scan (whose LRU walk is
	// O(distance) per access). Footprint and In always use the full
	// trace. 0 means DefaultMaxAccesses; negative means unlimited.
	MaxAccesses int
	// MaxDist caps the reuse-distance histogram resolution (0 means
	// DefaultMaxDist). Distances beyond the cap still contribute their
	// exact value to the mean.
	MaxDist int
}

// DefaultMaxAccesses bounds the per-kernel scans: enough to pin R and
// the reuse split within a few percent on every catalogue workload
// while keeping characterisation interactive on large traces.
const DefaultMaxAccesses = 1 << 17

// DefaultMaxDist is the default histogram resolution, matching the
// Fig. 4 experiment's profiler.
const DefaultMaxDist = 1 << 14

// reuseSampleWarps is how many warps the per-warp R scan samples
// (evenly spaced across the launch).
const reuseSampleWarps = 8

// Characterise computes the locality signature of a trace. R comes
// from replaying sampled warps' recorded streams through an LRU
// stack-distance profiler (one warp at a time, the Fig. 4 definition);
// the intra/inter split comes from a round-robin interleaving of all
// warps — the in-phase schedule a full-occupancy GPU approximates —
// tracking each line's previous toucher.
func Characterise(t *Trace, opts CharacteriseOptions) Signature {
	views := make([]kernelView, len(t.Kernels))
	for i, kt := range t.Kernels {
		views[i] = kt.view()
	}
	return signatureOf(t.Name, views, opts)
}

// kernelView is the scan core's read-only window onto one kernel: the
// loop body, launch shape, and a per-(slot, warp) stream accessor. It
// abstracts over where the streams live — nested KernelTrace slices or
// flat Replay arenas — so the in-memory and streaming ingest paths
// characterise through the identical code and agree bit-for-bit.
type kernelView struct {
	body       []trace.Instr
	warpIters  []int
	totalWarps int
	maxIters   int
	stream     func(slot, g int) []uint64
}

func (kt *KernelTrace) view() kernelView {
	return kernelView{
		body:       kt.Body,
		warpIters:  kt.WarpIters,
		totalWarps: kt.TotalWarps(),
		maxIters:   kt.MaxIters(),
		stream:     func(s, g int) []uint64 { return kt.Streams[s][g] },
	}
}

// signatureOf aggregates per-kernel scans into a workload Signature.
func signatureOf(name string, views []kernelView, opts CharacteriseOptions) Signature {
	if opts.MaxAccesses == 0 {
		opts.MaxAccesses = DefaultMaxAccesses
	}
	if opts.MaxDist <= 0 {
		opts.MaxDist = DefaultMaxDist
	}
	sig := Signature{Workload: name, Kernels: len(views)}

	var (
		issueTotal float64 // instruction issues, weights In
		inSum      float64
		warpTotal  float64 // warps, weights footprint
		footSum    float64
		finiteSum  float64 // finite reuses, weight R
		distSum    float64
		intraN     int64
		interN     int64
		coldN      int64
		scanned    int64
	)
	for _, v := range views {
		ks := characteriseKernel(v, opts)
		issues := float64(len(v.body)) * float64(totalIters(v.warpIters))
		issueTotal += issues
		inSum += ks.in * issues
		warpTotal += float64(v.totalWarps)
		footSum += ks.footprint * float64(v.totalWarps)
		finiteSum += float64(ks.finite)
		distSum += ks.meanDist * float64(ks.finite)
		intraN += ks.intra
		interN += ks.inter
		coldN += ks.cold
		scanned += ks.accesses
	}
	if issueTotal > 0 {
		sig.In = inSum / issueTotal
	}
	if warpTotal > 0 {
		sig.FootprintLines = footSum / warpTotal
	}
	if finiteSum > 0 {
		sig.ReuseDist = distSum / finiteSum
	}
	if n := intraN + interN; n > 0 {
		sig.IntraPct = 100 * float64(intraN) / float64(n)
		sig.InterPct = 100 * float64(interN) / float64(n)
	}
	sig.Accesses = scanned
	if scanned > 0 {
		sig.ColdPct = 100 * float64(coldN) / float64(scanned)
	}
	return sig
}

type kernelSig struct {
	in        float64
	footprint float64
	meanDist  float64
	finite    int64
	intra     int64
	inter     int64
	cold      int64
	accesses  int64
}

func totalIters(warpIters []int) int64 {
	var n int64
	for _, it := range warpIters {
		n += int64(it)
	}
	return n
}

// loadSlots returns the slot of each OpLoad in body order (one entry
// per load instruction, so a slot referenced twice counts twice).
func loadSlots(body []trace.Instr) []int {
	var out []int
	for _, ins := range body {
		if ins.Kind == trace.OpLoad {
			out = append(out, ins.Slot)
		}
	}
	return out
}

func characteriseKernel(v kernelView, opts CharacteriseOptions) kernelSig {
	loads := loadSlots(v.body)
	ks := kernelSig{}
	if len(loads) == 0 {
		ks.in = float64(len(v.body)) * 1000 // loadless: effectively infinite, as Kernel.In
		return ks
	}
	ks.in = float64(len(v.body)) / float64(len(loads))

	budget := int64(opts.MaxAccesses)
	if budget < 0 {
		budget = 1 << 62
	}
	total := v.totalWarps

	// Per-warp footprint over the full recorded streams (cheap: one set
	// insert per access).
	distinct := map[uint64]struct{}{}
	var footSum int
	for g := 0; g < total; g++ {
		clear(distinct)
		for _, s := range loads {
			for _, addr := range v.stream(s, g) {
				distinct[addr/trace.LineBytes] = struct{}{}
			}
		}
		footSum += len(distinct)
	}
	ks.footprint = float64(footSum) / float64(total)

	// R: sampled warps replay their own recorded stream through a fresh
	// profiler each (the single-warp Fig. 4 definition), dwell runs
	// collapsed per slot.
	step := total / reuseSampleWarps
	if step < 1 {
		step = 1
	}
	samples := (total + step - 1) / step
	perWarp := budget / int64(samples)
	if perWarp < 1 {
		perWarp = 1
	}
	lastLine := map[int]uint64{}
	for g := 0; g < total; g += step {
		prof := reuse.NewProfiler(opts.MaxDist)
		clear(lastLine)
		var n int64
	warp:
		for it := 0; it < v.warpIters[g]; it++ {
			for _, s := range loads {
				if n >= perWarp {
					break warp
				}
				stream := v.stream(s, g)
				line := stream[it%len(stream)] / trace.LineBytes
				if prev, ok := lastLine[s]; ok && prev == line {
					continue // intra-line spatial run
				}
				lastLine[s] = line
				prof.Touch(line)
				n++
			}
		}
		finite := prof.Accesses - prof.ColdMisses
		ks.meanDist += prof.MeanDistance() * float64(finite)
		ks.finite += finite
	}
	if ks.finite > 0 {
		ks.meanDist /= float64(ks.finite)
	}

	// Intra/inter/cold split: round-robin interleave of every warp,
	// O(1) per access (only the previous toucher of each line).
	lastWarp := map[uint64]int{}
scan:
	for it := 0; it < v.maxIters; it++ {
		for g := 0; g < total; g++ {
			if it >= v.warpIters[g] {
				continue
			}
			for _, s := range loads {
				if ks.accesses >= budget {
					break scan
				}
				stream := v.stream(s, g)
				line := stream[it%len(stream)] / trace.LineBytes
				prev, seen := lastWarp[line]
				ks.accesses++
				switch {
				case !seen:
					ks.cold++
				case prev == g:
					ks.intra++
				default:
					ks.inter++
				}
				lastWarp[line] = g
			}
		}
	}
	return ks
}
