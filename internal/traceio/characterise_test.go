package traceio

import (
	"math"
	"testing"

	"poise/internal/sim"
	"poise/internal/trace"
)

// patternWorkload wraps one pattern in a single-kernel workload with
// the given body shape.
func patternWorkload(t *testing.T, name string, p trace.Pattern, gap, iters, warps, blocks int) *sim.Workload {
	t.Helper()
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(gap)
	return &sim.Workload{Name: name, Kernels: []*trace.Kernel{{
		Name:          name + "#0",
		Body:          b.Body(),
		Patterns:      []trace.Pattern{p},
		Iters:         iters,
		WarpsPerBlock: warps,
		Blocks:        blocks,
	}}}
}

func TestCharacterisePrivateSweep(t *testing.T) {
	// Per-warp private footprints: every reuse is intra-warp and every
	// warp touches exactly Lines lines.
	w := patternWorkload(t, "priv",
		trace.PrivateSweep{Region: 21, Lines: 16, Step: 1}, 3, 64, 4, 2)
	sig := Characterise(mustRecord(t, w), CharacteriseOptions{})
	if sig.Workload != "priv" || sig.Kernels != 1 {
		t.Fatalf("identity wrong: %+v", sig)
	}
	if got, want := sig.In, 4.0; got != want {
		t.Fatalf("In = %v, want %v", got, want)
	}
	if sig.FootprintLines != 16 {
		t.Fatalf("footprint = %v, want 16", sig.FootprintLines)
	}
	if sig.IntraPct != 100 || sig.InterPct != 0 {
		t.Fatalf("private sweep must be pure intra-warp: %+v", sig)
	}
	// Single-warp R of a step-1 sweep over 16 lines: every reuse sits
	// at stack distance 15.
	if sig.ReuseDist < 14 || sig.ReuseDist > 16 {
		t.Fatalf("R = %v, want ~15", sig.ReuseDist)
	}
	if sig.Accesses != 64*8 {
		t.Fatalf("accesses = %d, want %d", sig.Accesses, 64*8)
	}
	// 8 warps × 16 private lines are cold exactly once each.
	if got, want := sig.ColdPct, 100*float64(8*16)/float64(64*8); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ColdPct = %v, want %v", got, want)
	}
}

func TestCharacteriseSharedSweep(t *testing.T) {
	// In-phase shared sweep: every warp touches the same line each
	// iteration, so all reuse is inter-warp and tight.
	w := patternWorkload(t, "shared",
		trace.SharedSweep{Region: 22, Lines: 12, Step: 1, Lag: 0}, 2, 48, 4, 2)
	sig := Characterise(mustRecord(t, w), CharacteriseOptions{})
	if sig.InterPct < 99 {
		t.Fatalf("in-phase shared sweep must be inter-warp dominated: %+v", sig)
	}
	if sig.FootprintLines != 12 {
		t.Fatalf("footprint = %v, want 12", sig.FootprintLines)
	}
	if sig.ReuseDist > 12 {
		t.Fatalf("in-phase reuse must be tight, R = %v", sig.ReuseDist)
	}
}

func TestCharacteriseStreamNoReuse(t *testing.T) {
	w := patternWorkload(t, "stream",
		trace.Stream{Region: 23, WrapLines: 1 << 16}, 1, 40, 4, 2)
	sig := Characterise(mustRecord(t, w), CharacteriseOptions{})
	if sig.ColdPct != 100 {
		t.Fatalf("pure stream must be all cold misses: %+v", sig)
	}
	if sig.ReuseDist != 0 {
		t.Fatalf("pure stream has no finite reuse, R = %v", sig.ReuseDist)
	}
}

func TestCharacteriseSamplingCap(t *testing.T) {
	w := patternWorkload(t, "capped",
		trace.PrivateSweep{Region: 24, Lines: 8, Step: 1}, 1, 100, 4, 2)
	sig := Characterise(mustRecord(t, w), CharacteriseOptions{MaxAccesses: 50})
	if sig.Accesses != 50 {
		t.Fatalf("cap ignored: %d accesses profiled", sig.Accesses)
	}
	// Footprint always uses the full trace regardless of the cap.
	if sig.FootprintLines != 8 {
		t.Fatalf("footprint = %v, want 8", sig.FootprintLines)
	}
}

func TestCharacteriseLoadlessKernel(t *testing.T) {
	b := &trace.BodyBuilder{}
	b.ALU(3)
	b.Store()
	w := &sim.Workload{Name: "storeonly", Kernels: []*trace.Kernel{{
		Name:          "storeonly#0",
		Body:          b.Body(),
		Patterns:      []trace.Pattern{trace.Stream{Region: 25, WrapLines: 32}},
		Iters:         10,
		WarpsPerBlock: 2,
		Blocks:        1,
	}}}
	sig := Characterise(mustRecord(t, w), CharacteriseOptions{})
	if sig.In < 1000 {
		t.Fatalf("loadless kernel must report effectively-infinite In, got %v", sig.In)
	}
	if sig.Accesses != 0 || !noNaN(sig) {
		t.Fatalf("loadless signature malformed: %+v", sig)
	}
}

func noNaN(s Signature) bool {
	for _, v := range []float64{s.In, s.FootprintLines, s.ReuseDist, s.IntraPct, s.InterPct, s.ColdPct} {
		if math.IsNaN(v) {
			return false
		}
	}
	return true
}
