package traceio

import (
	"strings"
	"testing"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/trace"
)

const accelSample = `-kernel name = vecadd
-grid dim = (2,1,1)
-block dim = (64,1,1)
-shmem = 0

#BEGIN_TB
thread block = 0,0,0
warp = 0
insts = 4
0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100000
0010 ffffffff 1 R2 IADD 2 R1 R5
0018 ffffffff 1 R3 LDG.E 1 R6 4 0x200080
0020 ffffffff 0 STG.E 2 R3 R7 4 0x300000
warp = 1
insts = 4
0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100080
0010 ffffffff 1 R2 IADD 2 R1 R5
0018 ffffffff 1 R3 LDG.E 1 R6 4 0x200100
0020 ffffffff 0 STG.E 2 R3 R7 4 0x300080
#END_TB
#BEGIN_TB
thread block = 1,0,0
warp = 0
insts = 4
0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100100
0010 ffffffff 1 R2 IADD 2 R1 R5
0018 ffffffff 1 R3 LDG.E 1 R6 4 0x200180
0020 ffffffff 0 STG.E 2 R3 R7 4 0x300100
warp = 1
insts = 2
0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100180
0010 ffffffff 1 R2 IADD 2 R1 R5
#END_TB
`

func TestReadAccelSim(t *testing.T) {
	tr, err := ReadAccelSim(strings.NewReader(accelSample), "vecadd")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "vecadd" || len(tr.Kernels) != 1 {
		t.Fatalf("trace identity wrong: %+v", tr)
	}
	kt := tr.Kernels[0]
	if kt.Blocks != 2 || kt.WarpsPerBlock != 2 || kt.TotalWarps() != 4 {
		t.Fatalf("geometry wrong: %+v", kt)
	}
	// Three static memory PCs → three slots, in PC order: LDG(0008),
	// LDG(0018), STG(0020).
	if kt.Slots != 3 {
		t.Fatalf("slots = %d, want 3", kt.Slots)
	}
	var kinds []trace.OpKind
	for _, ins := range kt.Body {
		if ins.Kind != trace.OpALU {
			kinds = append(kinds, ins.Kind)
		}
	}
	if len(kinds) != 3 || kinds[0] != trace.OpLoad || kinds[1] != trace.OpLoad || kinds[2] != trace.OpStore {
		t.Fatalf("body memory ops wrong: %v", kinds)
	}
	// One IADD per memory instruction in the trace keeps In ≈ 2: each
	// synthesised memory op is followed by gap=0 or 1 ALU...
	if got := kt.Streams[0][0][0]; got != 0x100000 {
		t.Fatalf("warp 0 slot 0 addr = %#x", got)
	}
	if got := kt.Streams[0][3][0]; got != 0x100180 {
		t.Fatalf("warp 3 slot 0 addr = %#x", got)
	}
	// Warp 3 never issued the second load or the store: padded null
	// line keeps the trace valid and replayable.
	if got := kt.Streams[1][3]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("warp 3 slot 1 padding wrong: %v", got)
	}
	if kt.WarpIters[0] != 1 || kt.WarpIters[3] != 1 {
		t.Fatalf("warp iters wrong: %v", kt.WarpIters)
	}

	// The ingested trace must characterise and replay end to end.
	sig := Characterise(tr, CharacteriseOptions{})
	if sig.Accesses == 0 || sig.In <= 1 {
		t.Fatalf("ingested signature empty: %+v", sig)
	}
	w, err := tr.Workload()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunWorkload(config.Default().Scale(1), w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.L1.Accesses == 0 {
		t.Fatalf("replayed accel-sim trace ran nothing: %+v", res)
	}
}

func TestReadAccelSimGolden(t *testing.T) {
	tr, err := ReadFile("testdata/vecadd_accelsim.trace")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "vecadd_accelsim" {
		t.Fatalf("workload named %q, want file-derived name", tr.Name)
	}
	if len(tr.Kernels) != 1 || tr.Kernels[0].TotalWarps() != 4 {
		t.Fatalf("golden accel-sim fixture parsed wrong: %+v", tr.Kernels[0])
	}
}

func TestReadAccelSimErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "no kernel"},
		{"no name", "#BEGIN_TB\nthread block = 0,0,0\n", "before '-kernel name'"},
		{"no dims", "-kernel name = k\nthread block = 0,0,0\n", "before grid/block dims"},
		{"bad grid", "-kernel name = k\n-grid dim = (0,1,1)\n", "positive integer"},
		{"bad block dim", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (x,1,1)\n", "positive integer"},
		{"block outside grid", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 4,0,0\n", "outside grid"},
		{"warp outside block", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 7\n", "outside"},
		{"warp before block", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nwarp = 0\n", "outside a thread block"},
		{"instr before warp", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\n0008 ffffffff 1 R1 LDG.E 1 R2 4 0x80\n", "outside a warp"},
		{"bad pc", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\nzz ffffffff 1 R1 LDG.E 1 R2 4 0x80\n", "bad PC"},
		{"missing address", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\n0008 ffffffff 1 R1 LDG.E\n", "missing width"},
		{"no memory ops", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\n0008 ffffffff 1 R1 IADD 1 R2\n", "no memory instructions"},
		{"grid overflow", "-kernel name = k\n-grid dim = (2000000000,2000000000,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\n", "warp limit"},
		{"block dim overflow", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (2000000000,2000000000,1)\nthread block = 0,0,0\n", "warp limit"},
	}
	for _, c := range cases {
		_, err := ReadAccelSim(strings.NewReader(c.in), "w")
		if err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
