package traceio

import (
	"bytes"
	"compress/gzip"
	"reflect"
	"strings"
	"testing"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/trace"
)

const accelSample = `-kernel name = vecadd
-grid dim = (2,1,1)
-block dim = (64,1,1)
-shmem = 0

#BEGIN_TB
thread block = 0,0,0
warp = 0
insts = 4
0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100000
0010 ffffffff 1 R2 IADD 2 R1 R5
0018 ffffffff 1 R3 LDG.E 1 R6 4 0x200080
0020 ffffffff 0 STG.E 2 R3 R7 4 0x300000
warp = 1
insts = 4
0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100080
0010 ffffffff 1 R2 IADD 2 R1 R5
0018 ffffffff 1 R3 LDG.E 1 R6 4 0x200100
0020 ffffffff 0 STG.E 2 R3 R7 4 0x300080
#END_TB
#BEGIN_TB
thread block = 1,0,0
warp = 0
insts = 4
0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100100
0010 ffffffff 1 R2 IADD 2 R1 R5
0018 ffffffff 1 R3 LDG.E 1 R6 4 0x200180
0020 ffffffff 0 STG.E 2 R3 R7 4 0x300100
warp = 1
insts = 2
0008 ffffffff 1 R1 LDG.E 1 R4 4 0x100180
0010 ffffffff 1 R2 IADD 2 R1 R5
#END_TB
`

func TestReadAccelSim(t *testing.T) {
	tr, err := ReadAccelSim(strings.NewReader(accelSample), "vecadd")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "vecadd" || len(tr.Kernels) != 1 {
		t.Fatalf("trace identity wrong: %+v", tr)
	}
	kt := tr.Kernels[0]
	if kt.Blocks != 2 || kt.WarpsPerBlock != 2 || kt.TotalWarps() != 4 {
		t.Fatalf("geometry wrong: %+v", kt)
	}
	// Three static memory PCs → three slots, in PC order: LDG(0008),
	// LDG(0018), STG(0020).
	if kt.Slots != 3 {
		t.Fatalf("slots = %d, want 3", kt.Slots)
	}
	var kinds []trace.OpKind
	for _, ins := range kt.Body {
		if ins.Kind != trace.OpALU {
			kinds = append(kinds, ins.Kind)
		}
	}
	if len(kinds) != 3 || kinds[0] != trace.OpLoad || kinds[1] != trace.OpLoad || kinds[2] != trace.OpStore {
		t.Fatalf("body memory ops wrong: %v", kinds)
	}
	// One IADD per memory instruction in the trace keeps In ≈ 2: each
	// synthesised memory op is followed by gap=0 or 1 ALU...
	if got := kt.Streams[0][0][0]; got != 0x100000 {
		t.Fatalf("warp 0 slot 0 addr = %#x", got)
	}
	if got := kt.Streams[0][3][0]; got != 0x100180 {
		t.Fatalf("warp 3 slot 0 addr = %#x", got)
	}
	// Warp 3 never issued the second load or the store: padded null
	// line keeps the trace valid and replayable.
	if got := kt.Streams[1][3]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("warp 3 slot 1 padding wrong: %v", got)
	}
	if kt.WarpIters[0] != 1 || kt.WarpIters[3] != 1 {
		t.Fatalf("warp iters wrong: %v", kt.WarpIters)
	}

	// The ingested trace must characterise and replay end to end.
	sig := Characterise(tr, CharacteriseOptions{})
	if sig.Accesses == 0 || sig.In <= 1 {
		t.Fatalf("ingested signature empty: %+v", sig)
	}
	w, err := tr.Workload()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunWorkload(config.Default().Scale(1), w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.L1.Accesses == 0 {
		t.Fatalf("replayed accel-sim trace ran nothing: %+v", res)
	}
}

func TestReadAccelSimGolden(t *testing.T) {
	tr, err := ReadFile("testdata/vecadd_accelsim.trace")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "vecadd_accelsim" {
		t.Fatalf("workload named %q, want file-derived name", tr.Name)
	}
	if len(tr.Kernels) != 1 || tr.Kernels[0].TotalWarps() != 4 {
		t.Fatalf("golden accel-sim fixture parsed wrong: %+v", tr.Kernels[0])
	}
}

// TestReadAccelSimCoalescingMask covers the uncoalesced dialect: a
// memory op carrying one address per active lane must coalesce to its
// distinct cache lines in first-touch order, shared-memory ops must be
// validated then folded into the ALU gap, and the gzipped golden
// fixture must load through ReadFile's content dispatch. The fixture
// (testdata/vecadd_mask.trace.gz) is the committed form of this dump.
func TestReadAccelSimCoalescingMask(t *testing.T) {
	tr, err := ReadFile("testdata/vecadd_mask.trace.gz")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "vecadd_mask" || len(tr.Kernels) != 1 {
		t.Fatalf("trace identity wrong: %+v", tr)
	}
	kt := tr.Kernels[0]
	if kt.Blocks != 2 || kt.WarpsPerBlock != 2 || kt.Slots != 3 {
		t.Fatalf("geometry wrong: blocks=%d wpb=%d slots=%d", kt.Blocks, kt.WarpsPerBlock, kt.Slots)
	}
	// Warp 0's first LDG lists 4 lane addresses inside one 128-byte
	// line: one stream entry. Its second LDG straddles two lines; the
	// STG's 4 lanes cover three.
	if got := kt.Streams[0][0]; len(got) != 1 || got[0] != 0x100000 {
		t.Fatalf("slot 0 warp 0 = %#x, want the one coalesced line 0x100000", got)
	}
	if got := kt.Streams[1][0]; !reflect.DeepEqual(got, []uint64{0x200000, 0x200080}) {
		t.Fatalf("slot 1 warp 0 = %#x, want two distinct lines", got)
	}
	if got := kt.Streams[2][0]; !reflect.DeepEqual(got, []uint64{0x300000, 0x300080, 0x300100}) {
		t.Fatalf("slot 2 warp 0 = %#x, want three first-touch-ordered lines", got)
	}
	// Warp 2 only issued the first load; warp 3 has no section at all —
	// untouched slots replay the padded null line.
	if got := kt.Streams[0][2]; len(got) != 1 || got[0] != 0x100200 {
		t.Fatalf("slot 0 warp 2 = %#x", got)
	}
	for s := 0; s < 3; s++ {
		if got := kt.Streams[s][3]; len(got) != 1 || got[0] != 0 {
			t.Fatalf("slot %d warp 3 = %#x, want null-line padding", s, got)
		}
	}
	// Shared ops (3 LDS) and IADDs (3) feed the ALU gap; with 7 global
	// memory instructions the rounded gap is 1, so the synthesised body
	// alternates mem/ALU.
	var alus int
	for _, ins := range kt.Body {
		if ins.Kind == trace.OpALU {
			alus++
		}
	}
	if alus != kt.Slots {
		t.Fatalf("body ALU gap total = %d, want %d (gap 1 per memory slot)", alus, kt.Slots)
	}
	// The dialect must replay end to end like the legacy form.
	w, err := tr.Workload()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunWorkload(config.Default().Scale(1), w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 || res.L1.Accesses == 0 {
		t.Fatalf("mask-dialect replay ran nothing: %+v", res)
	}
}

// TestReadAccelSimGzipMatchesPlain pins the transparent decompression:
// the same text, plain and gzipped, must parse to DeepEqual traces.
func TestReadAccelSimGzipMatchesPlain(t *testing.T) {
	plain, err := ReadAccelSim(strings.NewReader(accelSample), "vecadd")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(accelSample)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	zipped, err := ReadAccelSim(&buf, "vecadd")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, zipped) {
		t.Fatal("gzipped accel-sim text parsed differently from plain")
	}
}

func TestReadAccelSimErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "no kernel"},
		{"no name", "#BEGIN_TB\nthread block = 0,0,0\n", "before '-kernel name'"},
		{"no dims", "-kernel name = k\nthread block = 0,0,0\n", "before grid/block dims"},
		{"bad grid", "-kernel name = k\n-grid dim = (0,1,1)\n", "positive integer"},
		{"bad block dim", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (x,1,1)\n", "positive integer"},
		{"block outside grid", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 4,0,0\n", "outside grid"},
		{"warp outside block", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 7\n", "outside"},
		{"warp before block", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nwarp = 0\n", "outside a thread block"},
		{"instr before warp", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\n0008 ffffffff 1 R1 LDG.E 1 R2 4 0x80\n", "outside a warp"},
		{"bad pc", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\nzz ffffffff 1 R1 LDG.E 1 R2 4 0x80\n", "bad PC"},
		{"missing address", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\n0008 ffffffff 1 R1 LDG.E\n", "missing width"},
		{"mask mismatch", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\n0008 0000000f 1 R1 LDG.E 1 R2 4 0x80 0x100\n", "2 addresses for a 4-lane active mask"},
		{"bad lane address", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\n0008 00000003 1 R1 LDG.E 1 R2 4 0x80 zz\n", "bad address"},
		{"shared missing width", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\n0008 ffffffff 1 R1 LDS.128 1 R2\n", "missing width"},
		{"shared mask mismatch", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\n0008 00000007 1 R1 STS.128 1 R2 16 0x40 0x80\n", "2 addresses for a 3-lane active mask"},
		{"no memory ops", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\nwarp = 0\n0008 ffffffff 1 R1 IADD 1 R2\n", "no memory instructions"},
		{"grid overflow", "-kernel name = k\n-grid dim = (2000000000,2000000000,1)\n-block dim = (32,1,1)\nthread block = 0,0,0\n", "warp limit"},
		{"block dim overflow", "-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (2000000000,2000000000,1)\nthread block = 0,0,0\n", "warp limit"},
	}
	for _, c := range cases {
		_, err := ReadAccelSim(strings.NewReader(c.in), "w")
		if err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
