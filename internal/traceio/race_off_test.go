//go:build !race

package traceio

// raceEnabled lets the simulation-heavy round-trip tests shrink when
// the race detector (which slows the cycle engine ~10x) is on.
const raceEnabled = false
