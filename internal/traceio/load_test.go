package traceio

import (
	"os"
	"path/filepath"
	"testing"

	"poise/internal/sim"
)

// namedMini clones the mini workload under a different name so a
// directory can hold several distinct traces.
func namedMini(name string) *sim.Workload {
	w := miniWorkload()
	out := &sim.Workload{Name: name, MemorySensitive: w.MemorySensitive}
	for i, k := range w.Kernels {
		kc := *k
		kc.Name = name + "#" + string(rune('0'+i))
		out.Kernels = append(out.Kernels, &kc)
	}
	return out
}

// TestLoadWorkloadsDirectorySortedWalk pins the directory-walk
// contract: workloads load in sorted file-name order regardless of
// the order the files were created in (directory iteration order
// follows creation order on some filesystems), because catalogue
// insertion order feeds the evaluation-set order and the experiment
// cache tags.
func TestLoadWorkloadsDirectorySortedWalk(t *testing.T) {
	dir := t.TempDir()
	// Deliberately created in an order that differs from name order,
	// with names whose sort order differs from creation order across
	// all three accepted extensions.
	creation := []struct{ file, workload string }{
		{"zeta.ptrace", "zeta"},
		{"alpha.ptrace.gz", "alpha"},
		{"mid.ptrace", "mid"},
		{"beta.ptrace", "beta"},
	}
	for _, c := range creation {
		tr, err := Record(namedMini(c.workload))
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(filepath.Join(dir, c.file), tr); err != nil {
			t.Fatal(err)
		}
	}
	// Distractors that must be ignored: a subdirectory and an unrelated
	// extension.
	if err := os.Mkdir(filepath.Join(dir, "aaa-subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "aaa-notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	ws, err := LoadWorkloads(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "mid", "zeta"} // file-name sorted
	if len(ws) != len(want) {
		t.Fatalf("loaded %d workloads, want %d", len(ws), len(want))
	}
	for i, name := range want {
		if ws[i].Name != name {
			got := make([]string, len(ws))
			for j, w := range ws {
				got[j] = w.Name
			}
			t.Fatalf("workload order %v, want %v (sorted by file name)", got, want)
		}
	}

	// And the order must be stable across repeated loads.
	again, err := LoadWorkloads(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		if ws[i].Name != again[i].Name {
			t.Fatal("directory load order must be deterministic across calls")
		}
	}
}

// The kernels of a workload must replay identically whether the trace
// was loaded alone or as part of a directory (no cross-file state).
func TestLoadWorkloadsDirectoryMatchesSingle(t *testing.T) {
	dir := t.TempDir()
	tr := mustRecord(t, namedMini("solo"))
	path := filepath.Join(dir, "solo.ptrace")
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	single, err := LoadWorkloads(path)
	if err != nil {
		t.Fatal(err)
	}
	fromDir, err := LoadWorkloads(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || len(fromDir) != 1 {
		t.Fatal("expected one workload from each load")
	}
	if single[0].Name != fromDir[0].Name || len(single[0].Kernels) != len(fromDir[0].Kernels) {
		t.Fatal("directory load differs from single-file load")
	}
}
