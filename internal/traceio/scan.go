package traceio

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"poise/internal/trace"
)

// Scanner is the streaming core of the poisetrace reader: it parses the
// container prologue (magic, version, JSON header) eagerly — so launch
// geometry is validated before a single stream byte is decoded — and
// then yields one per-warp address stream at a time, in the container's
// canonical (kernel, slot, warp) order, holding only the record in
// flight. Memory stays O(header + largest record) however large the
// file is, which is what lets multi-GB traces feed the flat replay
// arenas without ever materialising a whole Trace.
//
// Scanner inherits the format's strict never-panic discipline: every
// malformed input — truncation mid-record, corrupt varints, geometry
// the streams cannot satisfy — surfaces as an error from NewScanner or
// Err, with exactly the verdict the whole-file Read reports (Read *is*
// a collect-all loop over a Scanner).
//
// Usage:
//
//	sc, err := NewScanner(r)
//	...
//	for {
//		rec, ok := sc.Next()
//		if !ok {
//			break
//		}
//		consume(rec) // rec.Addrs is only valid until the next call
//	}
//	if err := sc.Err(); err != nil { ... }
type Scanner struct {
	br *bufio.Reader

	name            string
	memorySensitive bool
	kernels         []KernelMeta

	// Cursor of the next record to yield.
	kernel, slot, warp int

	buf  []uint64 // reused across records
	err  error
	done bool
}

// KernelMeta is one kernel's header view: everything a KernelTrace
// carries except the address streams, which the Scanner yields
// incrementally.
type KernelMeta struct {
	Name             string
	Body             []trace.Instr
	Slots            int
	WarpsPerBlock    int
	Blocks           int
	MaxWarpsPerSched int
	MaxBlocksPerSM   int
	WarpIters        []int
}

// TotalWarps returns the kernel's launch width.
func (m *KernelMeta) TotalWarps() int { return m.WarpsPerBlock * m.Blocks }

// MaxIters returns the largest per-warp iteration count.
func (m *KernelMeta) MaxIters() int {
	max := 1
	for _, it := range m.WarpIters {
		if it > max {
			max = it
		}
	}
	return max
}

// geometry adapts the meta to the shared geometry validator.
func (m *KernelMeta) geometry() *KernelTrace {
	return &KernelTrace{
		Name:             m.Name,
		Body:             m.Body,
		Slots:            m.Slots,
		WarpsPerBlock:    m.WarpsPerBlock,
		Blocks:           m.Blocks,
		MaxWarpsPerSched: m.MaxWarpsPerSched,
		MaxBlocksPerSM:   m.MaxBlocksPerSM,
		WarpIters:        m.WarpIters,
	}
}

// StreamRecord is one streamed per-warp address stream. Addrs aliases the
// Scanner's internal buffer: it is valid until the next call to Next
// and must be copied to be retained.
type StreamRecord struct {
	Kernel int // index into Kernels()
	Slot   int
	Warp   int // global warp id
	Addrs  []uint64
}

// NewScanner parses the container prologue from r, transparently
// unwrapping gzip, and validates every kernel's launch geometry before
// returning. It is strict: a bad magic, version, header or geometry is
// an error, never a panic.
func NewScanner(r io.Reader) (*Scanner, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("traceio: gzip: %w", err)
		}
		br = bufio.NewReader(gz)
	}

	magic := make([]byte, len(formatMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("traceio: reading magic: %w", badEOF(err))
	}
	if string(magic) != formatMagic {
		return nil, fmt.Errorf("traceio: bad magic %q: not a poisetrace file", printable(magic))
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading version: %w", badEOF(err))
	}
	if version != formatVersion {
		return nil, fmt.Errorf("traceio: unsupported format version %d (this build reads %d)",
			version, formatVersion)
	}
	hdrLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("traceio: reading header length: %w", badEOF(err))
	}
	if hdrLen > maxHeaderLen {
		return nil, fmt.Errorf("traceio: header length %d exceeds the %d-byte limit", hdrLen, maxHeaderLen)
	}
	hdrJSON := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdrJSON); err != nil {
		return nil, fmt.Errorf("traceio: truncated header (%d bytes expected): %w", hdrLen, badEOF(err))
	}
	dec := json.NewDecoder(bytes.NewReader(hdrJSON))
	dec.DisallowUnknownFields()
	var hdr header
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("traceio: decoding header: %w", err)
	}

	sc := &Scanner{br: br, name: hdr.Workload, memorySensitive: hdr.MemorySensitive}
	for ki, kh := range hdr.Kernels {
		m := KernelMeta{
			Name:             kh.Name,
			Slots:            kh.Slots,
			WarpsPerBlock:    kh.WarpsPerBlock,
			Blocks:           kh.Blocks,
			MaxWarpsPerSched: kh.MaxWarpsPerSched,
			MaxBlocksPerSM:   kh.MaxBlocksPerSM,
			WarpIters:        kh.WarpIters,
		}
		for bi, spec := range kh.Body {
			ins, err := spec.instr()
			if err != nil {
				return nil, fmt.Errorf("traceio: kernel %d body[%d]: %w", ki, bi, err)
			}
			m.Body = append(m.Body, ins)
		}
		if err := m.geometry().validateGeometry(); err != nil {
			return nil, fmt.Errorf("traceio: kernel %d (%s): %w", ki, kh.Name, err)
		}
		sc.kernels = append(sc.kernels, m)
	}
	return sc, nil
}

// Name returns the trace's workload name.
func (s *Scanner) Name() string { return s.name }

// MemorySensitive returns the header's Pbest classification bit.
func (s *Scanner) MemorySensitive() bool { return s.memorySensitive }

// Kernels returns the header's kernel metadata, in stream order. The
// slice is shared, not copied; callers must not mutate it.
func (s *Scanner) Kernels() []KernelMeta { return s.kernels }

// Next yields the next per-warp stream record, or false at the end of
// the container or on the first error (check Err to distinguish).
// Records arrive kernel-major, then slot, then global warp — exactly
// the order Write emits and the order flat replay arenas append in.
func (s *Scanner) Next() (StreamRecord, bool) {
	if s.err != nil || s.done {
		return StreamRecord{}, false
	}
	// Roll the (kernel, slot, warp) cursor forward past exhausted slots
	// and kernels (a kernel with Slots==0 contributes no records).
	for s.kernel < len(s.kernels) {
		m := &s.kernels[s.kernel]
		if s.slot >= m.Slots {
			s.kernel++
			s.slot, s.warp = 0, 0
			continue
		}
		if s.warp >= m.TotalWarps() {
			s.slot++
			s.warp = 0
			continue
		}
		break
	}
	if s.kernel >= len(s.kernels) {
		s.finish()
		return StreamRecord{}, false
	}

	ki, slot, warp := s.kernel, s.slot, s.warp
	count, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("traceio: kernel %d slot %d warp %d: reading stream length: %w",
			ki, slot, warp, badEOF(err))
		return StreamRecord{}, false
	}
	if count > maxStreamLen {
		s.err = fmt.Errorf("traceio: kernel %d slot %d warp %d: stream length %d exceeds limit",
			ki, slot, warp, count)
		return StreamRecord{}, false
	}
	if uint64(cap(s.buf)) < count {
		s.buf = make([]uint64, count)
	}
	stream := s.buf[:count]
	prev := int64(0)
	for j := range stream {
		delta, err := binary.ReadVarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("traceio: kernel %d slot %d warp %d access %d: %w",
				ki, slot, warp, j, badEOF(err))
			return StreamRecord{}, false
		}
		prev += delta
		if prev < 0 || prev > maxLineIndex {
			s.err = fmt.Errorf("traceio: kernel %d slot %d warp %d access %d: line index %d out of range",
				ki, slot, warp, j, prev)
			return StreamRecord{}, false
		}
		stream[j] = uint64(prev) * trace.LineBytes
	}

	// Advance the cursor for the next call.
	s.warp++
	return StreamRecord{Kernel: ki, Slot: slot, Warp: warp, Addrs: stream}, true
}

// finish consumes the trailer and requires clean EOF.
func (s *Scanner) finish() {
	s.done = true
	trailer := make([]byte, len(formatTrailer))
	if _, err := io.ReadFull(s.br, trailer); err != nil {
		s.err = fmt.Errorf("traceio: reading trailer: %w", badEOF(err))
		return
	}
	if string(trailer) != formatTrailer {
		s.err = fmt.Errorf("traceio: bad trailer %q: stream corrupt or truncated", printable(trailer))
		return
	}
	if _, err := s.br.ReadByte(); err != io.EOF {
		s.err = errors.New("traceio: trailing garbage after trailer")
	}
}

// Err returns the first error the scan hit, or nil after a clean run
// to the trailer.
func (s *Scanner) Err() error { return s.err }
