package traceio

import (
	"os"
	"reflect"
	"testing"
)

const goldenPath = "testdata/mini.ptrace.gz"

// TestGoldenFixture pins the on-disk format: the committed fixture
// must parse to exactly the trace Record produces today. If the format
// (or miniWorkload) changes intentionally, regenerate with
//
//	UPDATE_GOLDEN=1 go test ./internal/traceio -run TestGoldenFixture
//
// and bump formatVersion when the change breaks old readers.
func TestGoldenFixture(t *testing.T) {
	want := mustRecord(t, miniWorkload())
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := WriteFile(goldenPath, want); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
	}
	got, err := ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("golden fixture no longer matches Record(miniWorkload); " +
			"if the format change is intentional, regenerate with UPDATE_GOLDEN=1")
	}

	// The golden trace replays and characterises.
	if _, err := got.Workload(); err != nil {
		t.Fatal(err)
	}
	sig := Characterise(got, CharacteriseOptions{})
	if sig.Workload != "mini" || sig.Kernels != 2 || sig.Accesses == 0 {
		t.Fatalf("golden signature malformed: %+v", sig)
	}
}
