package traceio

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"poise/internal/config"
	"poise/internal/sim"
	"poise/internal/trace"
	"poise/internal/workloads"
)

// collectScanner rebuilds a whole Trace by draining a Scanner — an
// independent re-implementation of Read's collect-all loop, so the
// equivalence tests compare two genuinely separate paths rather than
// Read against itself.
func collectScanner(data []byte) (*Trace, error) {
	sc, err := NewScanner(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: sc.Name(), MemorySensitive: sc.MemorySensitive()}
	for _, m := range sc.Kernels() {
		kt := &KernelTrace{
			Name:             m.Name,
			Body:             m.Body,
			Slots:            m.Slots,
			WarpsPerBlock:    m.WarpsPerBlock,
			Blocks:           m.Blocks,
			MaxWarpsPerSched: m.MaxWarpsPerSched,
			MaxBlocksPerSM:   m.MaxBlocksPerSM,
			WarpIters:        m.WarpIters,
			Streams:          make([][][]uint64, m.Slots),
		}
		for s := range kt.Streams {
			kt.Streams[s] = make([][]uint64, m.TotalWarps())
		}
		t.Kernels = append(t.Kernels, kt)
	}
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		stream := make([]uint64, len(rec.Addrs))
		copy(stream, rec.Addrs)
		t.Kernels[rec.Kernel].Streams[rec.Slot][rec.Warp] = stream
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// TestScannerMatchesReadOnFixtures pins the streaming contract on every
// committed testdata fixture: Read and collect(Scanner) must agree on
// the error-vs-success verdict, and on success produce DeepEqual
// traces. Non-container fixtures (the Accel-Sim text dumps) are
// rejected identically by both paths.
func TestScannerMatchesReadOnFixtures(t *testing.T) {
	fixtures, err := filepath.Glob("testdata/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no testdata fixtures")
	}
	for _, path := range fixtures {
		if fi, err := os.Stat(path); err != nil || fi.IsDir() {
			continue
		}
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			whole, readErr := Read(bytes.NewReader(data))
			streamed, scanErr := collectScanner(data)
			if (readErr == nil) != (scanErr == nil) {
				t.Fatalf("verdicts diverge: Read err=%v, Scanner err=%v", readErr, scanErr)
			}
			if readErr != nil {
				if readErr.Error() != scanErr.Error() {
					t.Fatalf("error texts diverge:\nRead:    %v\nScanner: %v", readErr, scanErr)
				}
				return
			}
			if !reflect.DeepEqual(whole, streamed) {
				t.Fatalf("collect(Scanner) differs from Read on %s", path)
			}
		})
	}
}

// TestScannerMatchesReadRecorded covers the shapes the committed
// fixtures cannot: a freshly recorded multi-kernel workload with
// jittered per-warp iteration counts, through both the plain and
// gzipped container encodings.
func TestScannerMatchesReadRecorded(t *testing.T) {
	tr := mustRecord(t, miniWorkload())
	for _, gz := range []bool{false, true} {
		var buf bytes.Buffer
		if err := Write(&buf, tr, WriteOptions{Gzip: gz}); err != nil {
			t.Fatal(err)
		}
		whole, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := collectScanner(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(whole, streamed) {
			t.Fatalf("collect(Scanner) differs from Read (gzip=%v)", gz)
		}
	}
}

// TestReadWorkloadMatchesReadPath is the stream-replay guarantee on
// real catalogue workloads: ReadWorkload's flat-arena workload and
// single-pass Signature must be DeepEqual to the materialise-then-
// convert path (Read → Workload → Characterise). Two catalogue
// workloads cover the deterministic sweeps (ii) and the stochastic
// irregular patterns with iteration jitter (bfs).
func TestReadWorkloadMatchesReadPath(t *testing.T) {
	cat := workloads.NewCatalogue(workloads.Small)
	names := []string{"ii", "bfs"}
	if raceEnabled {
		names = []string{"ii"}
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			w := cat.Must(name)
			if raceEnabled {
				w = &sim.Workload{Name: w.Name, Kernels: w.Kernels[:1],
					MemorySensitive: w.MemorySensitive}
			}
			tr := mustRecord(t, w)
			var buf bytes.Buffer
			if err := Write(&buf, tr, WriteOptions{Gzip: true}); err != nil {
				t.Fatal(err)
			}

			parsed, err := Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			wantW, err := parsed.Workload()
			if err != nil {
				t.Fatal(err)
			}
			wantSig := Characterise(parsed, CharacteriseOptions{})

			gotW, gotSig, err := ReadWorkload(bytes.NewReader(buf.Bytes()), &CharacteriseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantW, gotW) {
				t.Fatalf("streamed workload differs from Read path")
			}
			if !reflect.DeepEqual(wantSig, gotSig) {
				t.Fatalf("streamed signature differs:\nRead path: %+v\nstreamed:  %+v", wantSig, gotSig)
			}
		})
	}
}

// TestStreamReplayBitIdentical closes the loop through the simulator:
// a workload ingested by ReadWorkload must replay to exactly the live
// run's metrics, like the Read-path replay does.
func TestStreamReplayBitIdentical(t *testing.T) {
	cfg := config.Default().Scale(1)
	w := miniWorkload()
	live, err := sim.RunWorkload(cfg, w, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, mustRecord(t, w), WriteOptions{Gzip: true}); err != nil {
		t.Fatal(err)
	}
	replayW, _, err := ReadWorkload(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := sim.RunWorkload(cfg, replayW, sim.GTO{}, sim.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("streamed replay differs from live run:\nlive:     %+v\nreplayed: %+v",
			summary(live), summary(replayed))
	}
}

// TestReplayBuilderFootprint is the white-box pin for the single-pass
// footprint: the builder's one reused scratch set must produce exactly
// the reference computation's result — a fresh distinct-set per warp,
// empty streams skipped, ceil-mean over counted warps — on streams
// with duplicates within warps, repeats across warps, and empty gaps.
func TestReplayBuilderFootprint(t *testing.T) {
	line := func(i int) uint64 { return uint64(i) * trace.LineBytes }
	cases := [][][]uint64{
		{},
		{{}},
		{{line(1), line(1), line(2)}},
		{{line(1), line(2)}, {}, {line(1), line(2), line(3), line(3)}},
		{{line(7)}, {line(7)}, {line(7)}, {}},
		{{line(1), line(2), line(3)}, {line(4)}, {line(5), line(5)}},
	}
	for i, warps := range cases {
		rep, err := NewReplay("w", warps)
		if err != nil {
			t.Fatal(err)
		}
		var sum, counted int
		for _, stream := range warps {
			if len(stream) == 0 {
				continue
			}
			distinct := map[uint64]struct{}{}
			for _, a := range stream {
				distinct[a] = struct{}{}
			}
			sum += len(distinct)
			counted++
		}
		want := 0
		if counted > 0 {
			want = (sum + counted - 1) / counted
		}
		if rep.Footprint() != want {
			t.Errorf("case %d: builder footprint %d, reference %d", i, rep.Footprint(), want)
		}
	}
}

// syntheticTrace builds a single-kernel container with warps×iters
// line-aligned addresses — a controlled record count for the alloc
// bound and the benchmarks.
func syntheticTrace(t testing.TB, warpsPerBlock, blocks, iters int) *Trace {
	t.Helper()
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(2)
	total := warpsPerBlock * blocks
	kt := &KernelTrace{
		Name:          "synth#0",
		Body:          b.Body(),
		Slots:         1,
		WarpsPerBlock: warpsPerBlock,
		Blocks:        blocks,
		WarpIters:     make([]int, total),
		Streams:       [][][]uint64{make([][]uint64, total)},
	}
	for g := 0; g < total; g++ {
		kt.WarpIters[g] = iters
		stream := make([]uint64, iters)
		for j := range stream {
			stream[j] = uint64((g*7+j)%4096) * trace.LineBytes
		}
		kt.Streams[0][g] = stream
	}
	tr := &Trace{Name: "synth", MemorySensitive: true, Kernels: []*KernelTrace{kt}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestScannerAllocsBounded asserts the streaming contract that matters
// for huge traces: draining a container allocates O(header + largest
// record), not O(records). The synthetic trace below carries 2048
// per-warp records; a scan that allocated per record would show up
// three orders of magnitude over the bound.
func TestScannerAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc accounting is not meaningful under -race")
	}
	tr := syntheticTrace(t, 8, 256, 16)
	var buf bytes.Buffer
	if err := Write(&buf, tr, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	records := 0
	allocs := testing.AllocsPerRun(5, func() {
		sc, err := NewScanner(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		records = 0
		for {
			_, ok := sc.Next()
			if !ok {
				break
			}
			records++
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	})
	if want := 8 * 256; records != want {
		t.Fatalf("scanned %d records, want %d", records, want)
	}
	if allocs > 100 {
		t.Fatalf("scan of %d records allocated %.0f times; streaming must stay O(records-in-flight)",
			records, allocs)
	}
}

// FuzzScanner fuzzes the streaming reader against the whole-trace
// reader: on arbitrary bytes — truncations mid-record, corrupt
// varints, geometry the streams cannot satisfy — neither path may
// panic, both must reach the same error-vs-success verdict, and on
// success the collected trace must be DeepEqual to Read's. The seed
// corpus in testdata/fuzz/FuzzScanner adds committed regressions:
// a valid container, plain and gzipped, systematic truncations, a
// flipped stream byte, and an Accel-Sim per-lane mask dump (which the
// container readers must cleanly reject as foreign).
func FuzzScanner(f *testing.F) {
	tr, err := Record(miniWorkload())
	if err != nil {
		f.Fatal(err)
	}
	var plain, gz bytes.Buffer
	if err := Write(&plain, tr, WriteOptions{}); err != nil {
		f.Fatal(err)
	}
	if err := Write(&gz, tr, WriteOptions{Gzip: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(gz.Bytes())
	f.Add(plain.Bytes()[:len(plain.Bytes())/2])
	f.Add(plain.Bytes()[:len(plain.Bytes())-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		whole, readErr := Read(bytes.NewReader(data))
		streamed, scanErr := collectScanner(data)
		if (readErr == nil) != (scanErr == nil) {
			t.Fatalf("verdicts diverge: Read err=%v, Scanner err=%v", readErr, scanErr)
		}
		if readErr == nil && !reflect.DeepEqual(whole, streamed) {
			t.Fatal("collect(Scanner) differs from Read on fuzzed input")
		}
	})
}
