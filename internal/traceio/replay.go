package traceio

import (
	"fmt"

	"poise/internal/sim"
	"poise/internal/trace"
)

// Replay plays one recorded address-stream slot back through the
// simulator: Addr(c, seq) returns the recorded address of warp
// c.GlobalWarp's seq-th access. It implements trace.Pattern (and
// trace.Reseeder: recorded streams carry no randomness, so reseeding
// is the identity and catalogue seeds pass through replayed workloads
// unchanged).
//
// Replay is total: a warp or sequence number beyond the recorded
// range wraps cyclically rather than panicking. With a kernel built by
// Trace.Workload the recorded range is never exceeded — PerWarpIters
// pins each warp to its recorded iteration count — but ingested
// traces (Accel-Sim) may have ragged per-slot stream lengths, which
// cyclic replay extends deterministically.
type Replay struct {
	name  string
	warps [][]uint64
	// footprint is the mean per-warp distinct-line count, precomputed
	// at build time so Footprint stays O(1).
	footprint int
}

// NewReplay builds a Replay for one slot from per-warp address
// streams (warps[g][seq] is warp g's seq-th line-aligned address).
func NewReplay(name string, warps [][]uint64) *Replay {
	r := &Replay{name: name, warps: warps}
	distinct := map[uint64]struct{}{}
	var sum, counted int
	for _, stream := range warps {
		if len(stream) == 0 {
			continue
		}
		clear(distinct)
		for _, a := range stream {
			distinct[a] = struct{}{}
		}
		sum += len(distinct)
		counted++
	}
	if counted > 0 {
		r.footprint = (sum + counted - 1) / counted
	}
	return r
}

// Addr implements trace.Pattern.
func (r *Replay) Addr(c trace.Ctx, seq int) uint64 {
	if len(r.warps) == 0 {
		return 0
	}
	g := c.GlobalWarp
	if g < 0 || g >= len(r.warps) {
		g = ((g % len(r.warps)) + len(r.warps)) % len(r.warps)
	}
	stream := r.warps[g]
	if len(stream) == 0 {
		return 0
	}
	if seq < 0 || seq >= len(stream) {
		seq = ((seq % len(stream)) + len(stream)) % len(stream)
	}
	return stream[seq]
}

// Footprint implements trace.Pattern.
func (r *Replay) Footprint() int { return r.footprint }

// Reseed implements trace.Reseeder: a recorded stream has no
// randomness left to perturb.
func (r *Replay) Reseed(delta uint64) trace.Pattern { return r }

// String identifies the slot in logs and errors.
func (r *Replay) String() string { return fmt.Sprintf("replay(%s)", r.name) }

// Kernel builds the replayable trace.Kernel for one recorded kernel:
// the recorded body and launch geometry with every pattern slot backed
// by a Replay, and PerWarpIters pinning each warp to its recorded
// iteration count.
func (kt *KernelTrace) Kernel() (*trace.Kernel, error) {
	if err := kt.validate(); err != nil {
		return nil, fmt.Errorf("traceio: kernel %s: %w", kt.Name, err)
	}
	pats := make([]trace.Pattern, kt.Slots)
	for s := range pats {
		pats[s] = NewReplay(fmt.Sprintf("%s/slot%d", kt.Name, s), kt.Streams[s])
	}
	k := &trace.Kernel{
		Name:             kt.Name,
		Body:             append([]trace.Instr(nil), kt.Body...),
		Patterns:         pats,
		Iters:            kt.MaxIters(),
		PerWarpIters:     append([]int(nil), kt.WarpIters...),
		WarpsPerBlock:    kt.WarpsPerBlock,
		Blocks:           kt.Blocks,
		MaxWarpsPerSched: kt.MaxWarpsPerSched,
		MaxBlocksPerSM:   kt.MaxBlocksPerSM,
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("traceio: kernel %s: %w", kt.Name, err)
	}
	return k, nil
}

// Workload builds a runnable sim.Workload that replays the trace
// deterministically through the simulator.
func (t *Trace) Workload() (*sim.Workload, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	w := &sim.Workload{Name: t.Name, MemorySensitive: t.MemorySensitive}
	for _, kt := range t.Kernels {
		k, err := kt.Kernel()
		if err != nil {
			return nil, err
		}
		w.Kernels = append(w.Kernels, k)
	}
	return w, nil
}
