package traceio

import (
	"fmt"
	"math"

	"poise/internal/sim"
	"poise/internal/trace"
)

// Replay plays one recorded address-stream slot back through the
// simulator: Addr(c, seq) returns the recorded address of warp
// c.GlobalWarp's seq-th access. It implements trace.Pattern (and
// trace.Reseeder: recorded streams carry no randomness, so reseeding
// is the identity and catalogue seeds pass through replayed workloads
// unchanged).
//
// Storage is flat: every warp's stream lives in one packed arena with
// a per-warp offset index (offs[g]..offs[g+1] bounds warp g's
// addresses). That is one allocation per slot instead of one per warp,
// and the Addr hot path — the innermost call of every simulated memory
// access — walks contiguous memory instead of chasing a pointer per
// warp. ReplayBuilder appends warps in order, so the arena can be
// filled directly from a Scanner without ever holding per-warp slices.
//
// Replay is total: a warp or sequence number beyond the recorded
// range wraps cyclically rather than panicking. With a kernel built by
// Trace.Workload the recorded range is never exceeded — PerWarpIters
// pins each warp to its recorded iteration count — but ingested
// traces (Accel-Sim) may have ragged per-slot stream lengths, which
// cyclic replay extends deterministically.
type Replay struct {
	name  string
	arena []uint64
	// offs[g] is where warp g's stream starts in arena; len(offs) is
	// warps+1, so offs[g+1]-offs[g] is warp g's stream length.
	offs []uint32
	// footprint is the mean per-warp distinct-address count, precomputed
	// at build time so Footprint stays O(1).
	footprint int
}

// ReplayBuilder accumulates one slot's per-warp streams into a flat
// Replay, computing the footprint in the same pass with a single
// scratch set. Call Warp once per global warp, in warp order, then
// Finish.
type ReplayBuilder struct {
	name     string
	arena    []uint64
	offs     []uint32
	scratch  map[uint64]struct{}
	sum      int // Σ per-warp distinct addresses (empty warps skipped)
	counted  int // warps with a non-empty stream
	overflow bool
}

// NewReplayBuilder starts a builder for one slot. If total warps and
// total addresses are known ahead of time (the poisetrace header
// declares both), sizing hints avoid regrowth; pass 0 when unknown.
func NewReplayBuilder(name string, warpsHint, addrsHint int) *ReplayBuilder {
	b := &ReplayBuilder{name: name, scratch: make(map[uint64]struct{})}
	if warpsHint > 0 {
		b.offs = make([]uint32, 1, warpsHint+1)
	} else {
		b.offs = make([]uint32, 1)
	}
	if addrsHint > 0 {
		b.arena = make([]uint64, 0, addrsHint)
	}
	return b
}

// Warp appends the next warp's address stream. The slice is copied;
// callers may reuse it (Scanner records do).
func (b *ReplayBuilder) Warp(stream []uint64) {
	b.arena = append(b.arena, stream...)
	if len(b.arena) > math.MaxUint32 {
		b.overflow = true
	}
	b.offs = append(b.offs, uint32(len(b.arena)))
	if len(stream) == 0 {
		return
	}
	clear(b.scratch)
	for _, a := range stream {
		b.scratch[a] = struct{}{}
	}
	b.sum += len(b.scratch)
	b.counted++
}

// Finish seals the builder into a Replay.
func (b *ReplayBuilder) Finish() (*Replay, error) {
	if b.overflow {
		return nil, fmt.Errorf("traceio: replay %s: %d addresses overflow the 32-bit offset index",
			b.name, len(b.arena))
	}
	r := &Replay{name: b.name, arena: b.arena, offs: b.offs}
	if b.counted > 0 {
		r.footprint = (b.sum + b.counted - 1) / b.counted
	}
	return r, nil
}

// NewReplay builds a Replay for one slot from per-warp address
// streams (warps[g][seq] is warp g's seq-th line-aligned address).
func NewReplay(name string, warps [][]uint64) (*Replay, error) {
	var addrs int
	for _, stream := range warps {
		addrs += len(stream)
	}
	b := NewReplayBuilder(name, len(warps), addrs)
	for _, stream := range warps {
		b.Warp(stream)
	}
	return b.Finish()
}

// numWarps returns how many warp streams the replay holds.
func (r *Replay) numWarps() int { return len(r.offs) - 1 }

// warpStream returns warp g's recorded stream as a view into the
// arena. Callers must not mutate it.
func (r *Replay) warpStream(g int) []uint64 {
	return r.arena[r.offs[g]:r.offs[g+1]]
}

// Addr implements trace.Pattern. The in-range case — every access of
// a container-built kernel — takes two folded unsigned compares and
// two contiguous loads; the wrap arithmetic is kept off that path.
func (r *Replay) Addr(c trace.Ctx, seq int) uint64 {
	nw := len(r.offs) - 1
	if nw <= 0 {
		return 0
	}
	g := c.GlobalWarp
	if uint(g) >= uint(nw) {
		g = ((g % nw) + nw) % nw
	}
	lo, hi := int(r.offs[g]), int(r.offs[g+1])
	n := hi - lo
	if uint(seq) >= uint(n) {
		if n == 0 {
			return 0
		}
		seq = ((seq % n) + n) % n
	}
	return r.arena[lo+seq]
}

// Footprint implements trace.Pattern.
func (r *Replay) Footprint() int { return r.footprint }

// Reseed implements trace.Reseeder: a recorded stream has no
// randomness left to perturb.
func (r *Replay) Reseed(delta uint64) trace.Pattern { return r }

// String identifies the slot in logs and errors.
func (r *Replay) String() string { return fmt.Sprintf("replay(%s)", r.name) }

// Kernel builds the replayable trace.Kernel for one recorded kernel:
// the recorded body and launch geometry with every pattern slot backed
// by a Replay, and PerWarpIters pinning each warp to its recorded
// iteration count.
func (kt *KernelTrace) Kernel() (*trace.Kernel, error) {
	if err := kt.validate(); err != nil {
		return nil, fmt.Errorf("traceio: kernel %s: %w", kt.Name, err)
	}
	pats := make([]trace.Pattern, kt.Slots)
	for s := range pats {
		rep, err := NewReplay(fmt.Sprintf("%s/slot%d", kt.Name, s), kt.Streams[s])
		if err != nil {
			return nil, fmt.Errorf("traceio: kernel %s: %w", kt.Name, err)
		}
		pats[s] = rep
	}
	return kernelFromMeta(kt.Name, kt.Body, kt.WarpsPerBlock, kt.Blocks,
		kt.MaxWarpsPerSched, kt.MaxBlocksPerSM, kt.WarpIters, kt.MaxIters(), pats)
}

// kernelFromMeta assembles and validates the trace.Kernel shared by
// the in-memory (KernelTrace) and streaming (ReadWorkload) paths.
func kernelFromMeta(name string, body []trace.Instr, warpsPerBlock, blocks,
	maxWarpsPerSched, maxBlocksPerSM int, warpIters []int, iters int,
	pats []trace.Pattern) (*trace.Kernel, error) {
	k := &trace.Kernel{
		Name:             name,
		Body:             append([]trace.Instr(nil), body...),
		Patterns:         pats,
		Iters:            iters,
		PerWarpIters:     append([]int(nil), warpIters...),
		WarpsPerBlock:    warpsPerBlock,
		Blocks:           blocks,
		MaxWarpsPerSched: maxWarpsPerSched,
		MaxBlocksPerSM:   maxBlocksPerSM,
	}
	if err := k.Validate(); err != nil {
		return nil, fmt.Errorf("traceio: kernel %s: %w", name, err)
	}
	return k, nil
}

// Workload builds a runnable sim.Workload that replays the trace
// deterministically through the simulator.
func (t *Trace) Workload() (*sim.Workload, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	w := &sim.Workload{Name: t.Name, MemorySensitive: t.MemorySensitive}
	for _, kt := range t.Kernels {
		k, err := kt.Kernel()
		if err != nil {
			return nil, err
		}
		w.Kernels = append(w.Kernels, k)
	}
	return w, nil
}
