package traceio

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"poise/internal/sim"
)

// WriteFile serialises t to path, gzip-compressing when the path ends
// in ".gz".
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = Write(f, t, WriteOptions{Gzip: strings.HasSuffix(path, ".gz")})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("traceio: writing %s: %w", path, err)
	}
	return nil
}

// dispatch sniffs the stream's format, unwrapping a gzip layer if
// present, and returns a reader positioned at the (decompressed) first
// byte plus whether it is a poisetrace container. forceContainer pins
// the verdict for *.ptrace paths so corrupt containers get the strict
// parser's diagnostics instead of falling through to the accel-sim
// text parser.
func dispatch(br *bufio.Reader, forceContainer bool) (io.Reader, bool, error) {
	sniff, _ := br.Peek(len(formatMagic))
	if len(sniff) >= 2 && sniff[0] == 0x1f && sniff[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, false, fmt.Errorf("traceio: gzip: %w", err)
		}
		inner := bufio.NewReader(gz)
		sniff, _ = inner.Peek(len(formatMagic))
		return inner, forceContainer || bytes.HasPrefix(sniff, []byte(formatMagic)), nil
	}
	return br, forceContainer || bytes.HasPrefix(sniff, []byte(formatMagic)), nil
}

// isPtracePath reports whether the extension pins the container format.
func isPtracePath(path string) bool {
	return strings.HasSuffix(path, ".ptrace") || strings.HasSuffix(path, ".ptrace.gz")
}

// ReadFile parses one trace file without ever buffering it whole:
// poisetrace containers (optionally gzipped) are detected by content
// and streamed through the Scanner; anything else is parsed as a
// (possibly gzipped) simplified Accel-Sim kernel trace, named after
// the file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd, container, err := dispatch(bufio.NewReader(f), isPtracePath(path))
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	var t *Trace
	if container {
		t, err = Read(rd)
	} else {
		t, err = ReadAccelSim(rd, workloadNameFromPath(path))
	}
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return t, nil
}

// LoadWorkloadFile streams one trace file into a replayable workload:
// poisetrace containers flow through ReadWorkload (flat arenas, no
// whole-trace materialisation); Accel-Sim text is parsed then
// converted.
func LoadWorkloadFile(path string) (*sim.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd, container, err := dispatch(bufio.NewReader(f), isPtracePath(path))
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	if container {
		w, _, err := ReadWorkload(rd, nil)
		if err != nil {
			return nil, fmt.Errorf("%w (reading %s)", err, path)
		}
		return w, nil
	}
	t, err := ReadAccelSim(rd, workloadNameFromPath(path))
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	w, err := t.Workload()
	if err != nil {
		return nil, fmt.Errorf("%w (from %s)", err, path)
	}
	return w, nil
}

// isPoisetrace sniffs the container magic, including through a gzip
// header (poisetrace is the only gzipped format we ingest).
func isPoisetrace(data []byte) bool {
	return bytes.HasPrefix(data, []byte(formatMagic)) ||
		(len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b)
}

func workloadNameFromPath(path string) string {
	base := filepath.Base(path)
	for _, suffix := range []string{".gz", ".ptrace", ".trace", ".txt"} {
		base = strings.TrimSuffix(base, suffix)
	}
	return base
}

// LoadWorkloads loads trace-backed workloads from path: either one
// trace file or a directory of them (files with .ptrace, .ptrace.gz,
// .trace or .trace.gz extensions, non-recursive, name-sorted). Each
// trace becomes a replayable sim.Workload, streamed rather than read
// whole.
func LoadWorkloads(path string) ([]*sim.Workload, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	var files []string
	if info.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return nil, fmt.Errorf("traceio: %w", err)
		}
		var names []string
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			if strings.HasSuffix(name, ".ptrace") || strings.HasSuffix(name, ".ptrace.gz") ||
				strings.HasSuffix(name, ".trace") || strings.HasSuffix(name, ".trace.gz") {
				names = append(names, name)
			}
		}
		// Walk in sorted file-name order, not directory iteration order:
		// catalogue insertion order determines the evaluation-set order
		// and the experiment cache tags, so it must be identical across
		// filesystems and platforms. The contract is pinned here (and by
		// TestLoadWorkloadsDirectorySortedWalk) rather than inherited
		// from whatever the directory listing happens to return.
		sort.Strings(names)
		for _, name := range names {
			files = append(files, filepath.Join(path, name))
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("traceio: no trace files (*.ptrace, *.ptrace.gz, *.trace, *.trace.gz) in %s", path)
		}
	} else {
		files = []string{path}
	}
	var out []*sim.Workload
	seen := map[string]string{}
	for _, f := range files {
		w, err := LoadWorkloadFile(f)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[w.Name]; dup {
			return nil, fmt.Errorf("traceio: workload %q appears in both %s and %s", w.Name, prev, f)
		}
		seen[w.Name] = f
		out = append(out, w)
	}
	return out, nil
}
