package traceio

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"poise/internal/sim"
)

// WriteFile serialises t to path, gzip-compressing when the path ends
// in ".gz".
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = Write(f, t, WriteOptions{Gzip: strings.HasSuffix(path, ".gz")})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("traceio: writing %s: %w", path, err)
	}
	return nil
}

// ReadFile parses one trace file. Poisetrace containers (optionally
// gzipped) are detected by content; anything else is parsed as a
// simplified Accel-Sim kernel trace, named after the file.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// A .ptrace extension always means the container format, so corrupt
	// containers get the strict parser's diagnostics instead of falling
	// through to the accel-sim text parser.
	if isPoisetrace(data) || strings.HasSuffix(path, ".ptrace") || strings.HasSuffix(path, ".ptrace.gz") {
		t, err := Read(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%w (reading %s)", err, path)
		}
		return t, nil
	}
	t, err := ReadAccelSim(bytes.NewReader(data), workloadNameFromPath(path))
	if err != nil {
		return nil, fmt.Errorf("%w (reading %s)", err, path)
	}
	return t, nil
}

// isPoisetrace sniffs the container magic, including through a gzip
// header (poisetrace is the only gzipped format we ingest).
func isPoisetrace(data []byte) bool {
	return bytes.HasPrefix(data, []byte(formatMagic)) ||
		(len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b)
}

func workloadNameFromPath(path string) string {
	base := filepath.Base(path)
	for _, suffix := range []string{".gz", ".ptrace", ".trace", ".txt"} {
		base = strings.TrimSuffix(base, suffix)
	}
	return base
}

// LoadWorkloads loads trace-backed workloads from path: either one
// trace file or a directory of them (files with .ptrace, .ptrace.gz or
// .trace extensions, non-recursive, name-sorted). Each trace becomes a
// replayable sim.Workload.
func LoadWorkloads(path string) ([]*sim.Workload, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("traceio: %w", err)
	}
	var files []string
	if info.IsDir() {
		entries, err := os.ReadDir(path)
		if err != nil {
			return nil, fmt.Errorf("traceio: %w", err)
		}
		var names []string
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			if strings.HasSuffix(name, ".ptrace") || strings.HasSuffix(name, ".ptrace.gz") ||
				strings.HasSuffix(name, ".trace") {
				names = append(names, name)
			}
		}
		// Walk in sorted file-name order, not directory iteration order:
		// catalogue insertion order determines the evaluation-set order
		// and the experiment cache tags, so it must be identical across
		// filesystems and platforms. The contract is pinned here (and by
		// TestLoadWorkloadsDirectorySortedWalk) rather than inherited
		// from whatever the directory listing happens to return.
		sort.Strings(names)
		for _, name := range names {
			files = append(files, filepath.Join(path, name))
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("traceio: no trace files (*.ptrace, *.ptrace.gz, *.trace) in %s", path)
		}
	} else {
		files = []string{path}
	}
	var out []*sim.Workload
	seen := map[string]string{}
	for _, f := range files {
		t, err := ReadFile(f)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[t.Name]; dup {
			return nil, fmt.Errorf("traceio: workload %q appears in both %s and %s", t.Name, prev, f)
		}
		seen[t.Name] = f
		w, err := t.Workload()
		if err != nil {
			return nil, fmt.Errorf("%w (from %s)", err, f)
		}
		out = append(out, w)
	}
	return out, nil
}
