package traceio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func encode(t *testing.T, tr *Trace, gz bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr, WriteOptions{Gzip: gz}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := mustRecord(t, miniWorkload())
	for _, gz := range []bool{false, true} {
		data := encode(t, tr, gz)
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("gzip=%v: %v", gz, err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("gzip=%v: decoded trace differs from recorded", gz)
		}
	}
}

func TestWriteFileReadFile(t *testing.T) {
	tr := mustRecord(t, miniWorkload())
	dir := t.TempDir()
	for _, name := range []string{"mini.ptrace", "mini.ptrace.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tr) {
			t.Fatalf("%s: decoded trace differs", name)
		}
	}
	// The gzipped container must actually be gzipped (and smaller).
	plain, _ := os.ReadFile(filepath.Join(dir, "mini.ptrace"))
	zipped, _ := os.ReadFile(filepath.Join(dir, "mini.ptrace.gz"))
	if len(zipped) == 0 || zipped[0] != 0x1f || zipped[1] != 0x8b {
		t.Fatal("WriteFile(.gz) did not gzip")
	}
	if len(zipped) >= len(plain) {
		t.Fatalf("gzip did not shrink the container: %d >= %d", len(zipped), len(plain))
	}
}

// TestCorruptInputs feeds the strict parser a catalogue of malformed
// containers; every one must return an error and none may panic.
func TestCorruptInputs(t *testing.T) {
	good := encode(t, mustRecord(t, miniWorkload()), false)
	hdrStart := len(formatMagic) + 2 // version varint + header-length varint ≥ 1 byte each

	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"empty", nil, "magic"},
		{"truncated magic", good[:4], "magic"},
		{"bad magic", []byte("NOTATRACEFILE..."), "not a poisetrace"},
		{"bad version", append([]byte(formatMagic), 0x7f), "unsupported format version"},
		{"missing header length", good[:len(formatMagic)+1], ""},
		{"truncated header", good[:hdrStart+5], "header"},
		{"corrupt header JSON", func() []byte {
			d := append([]byte(nil), good...)
			d[hdrStart+1] ^= 0xff
			return d
		}(), "header"},
		{"truncated stream", good[:len(good)-40], ""},
		{"missing trailer", good[:len(good)-len(formatTrailer)], "trailer"},
		{"corrupt trailer", func() []byte {
			d := append([]byte(nil), good...)
			d[len(d)-1] ^= 0xff
			return d
		}(), "trailer"},
		{"trailing garbage", append(append([]byte(nil), good...), 0xaa), "trailing garbage"},
		{"gzip with garbage body", []byte{0x1f, 0x8b, 0xff, 0x00, 0x01}, "gzip"},
	}
	for _, c := range cases {
		_, err := Read(bytes.NewReader(c.data))
		if err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
		if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.wantSub)
		}
	}
}

// TestHostileHeaderGeometry hand-crafts containers whose JSON headers
// declare absurd launch geometry; the reader must reject them before
// any allocation or integer overflow (a regression for a crafted
// 150-byte file that once panicked in make()).
func TestHostileHeaderGeometry(t *testing.T) {
	craft := func(hdrJSON string) []byte {
		var buf bytes.Buffer
		buf.WriteString(formatMagic)
		var scratch [16]byte
		buf.Write(scratch[:binary.PutUvarint(scratch[:], formatVersion)])
		buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(hdrJSON)))])
		buf.WriteString(hdrJSON)
		return buf.Bytes()
	}
	kernel := func(geom string) string {
		return `{"Workload":"w","Kernels":[{"Name":"k","Body":[{"Kind":"load"}],"Slots":1,` +
			geom + `,"WarpIters":[]}]}`
	}
	cases := []struct {
		name string
		hdr  string
		want string
	}{
		{"totalwarps int overflow", kernel(`"WarpsPerBlock":3037000500,"Blocks":3037000500`), "warp limit"},
		{"huge allocation", kernel(`"WarpsPerBlock":1000000000,"Blocks":1000000000`), "warp limit"},
		{"huge slot count", `{"Workload":"w","Kernels":[{"Name":"k","Body":[{"Kind":"alu"}],"Slots":2000000000,"WarpsPerBlock":1,"Blocks":1,"WarpIters":[1]}]}`, "slots"},
	}
	for _, c := range cases {
		_, err := Read(bytes.NewReader(craft(c.hdr)))
		if err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestValidateRejectsOverflowAddresses keeps Write and Read agreeing:
// an address past the format's line-index limit must fail validation
// (and hence Write), not produce a container Read then refuses.
func TestValidateRejectsOverflowAddresses(t *testing.T) {
	tr := mustRecord(t, miniWorkload())
	tr.Kernels[0].Streams[0][0][0] = 0xffffffffffffff80 // aligned, but beyond maxLineIndex
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "line-index limit") {
		t.Fatalf("Validate must reject overflow addresses, got %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr, WriteOptions{}); err == nil {
		t.Fatal("Write must refuse a trace Read could not load back")
	}
}

// TestHeaderGeometryMismatch corrupts semantic invariants that survive
// varint decoding and must be caught by validation.
func TestHeaderGeometryMismatch(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"warpiters too short", func(tr *Trace) { tr.Kernels[0].WarpIters = tr.Kernels[0].WarpIters[:1] }},
		{"zero iter count", func(tr *Trace) { tr.Kernels[0].WarpIters[2] = 0 }},
		{"slot out of range", func(tr *Trace) { tr.Kernels[0].Body[0].Slot = 99 }},
		{"negative usedist", func(tr *Trace) { tr.Kernels[0].Body[0].UseDist = -2 }},
		{"missing stream slot", func(tr *Trace) {
			tr.Kernels[0].Streams = tr.Kernels[0].Streams[:2]
		}},
		{"empty used stream", func(tr *Trace) { tr.Kernels[0].Streams[0][1] = nil }},
		{"unaligned address", func(tr *Trace) { tr.Kernels[0].Streams[0][0][0] += 4 }},
		{"no kernels", func(tr *Trace) { tr.Kernels = nil }},
		{"unnamed workload", func(tr *Trace) { tr.Name = "" }},
		{"negative occupancy cap", func(tr *Trace) { tr.Kernels[0].MaxBlocksPerSM = -1 }},
	}
	for _, m := range mutations {
		tr := mustRecord(t, miniWorkload())
		m.mutate(tr)
		if err := tr.Validate(); err == nil {
			t.Fatalf("%s: expected validation error", m.name)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr, WriteOptions{}); err == nil {
			t.Fatalf("%s: Write must refuse an invalid trace", m.name)
		}
	}
}

// FuzzRead is a fuzz-style stress of the parser: whatever the bytes,
// Read must return (possibly an error) without panicking. `go test`
// runs the seed corpus; `go test -fuzz=FuzzRead` explores further.
func FuzzRead(f *testing.F) {
	tr, err := Record(miniWorkload())
	if err != nil {
		f.Fatal(err)
	}
	var plain, zipped bytes.Buffer
	if err := Write(&plain, tr, WriteOptions{}); err != nil {
		f.Fatal(err)
	}
	if err := Write(&zipped, tr, WriteOptions{Gzip: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(zipped.Bytes())
	f.Add([]byte(formatMagic))
	f.Add([]byte{})
	corrupt := append([]byte(nil), plain.Bytes()...)
	for i := len(formatMagic); i < len(corrupt); i += 7 {
		corrupt[i] ^= 0x55
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err == nil {
			// Whatever parses must satisfy the validator (Read promises
			// only valid traces escape).
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("Read returned an invalid trace: %v", verr)
			}
		}
	})
}
