// Package traceio ingests recorded GPU kernel traces and turns them
// into first-class workloads for the Poise pipeline.
//
// The synthetic catalogue (package workloads) evaluates the paper's
// claims on address streams calibrated to Table IIIa; this package
// opens the same pipeline to *externally supplied* workloads. Three
// pieces cooperate:
//
//   - a versioned on-disk format ("poisetrace", see format.go) holding
//     a workload's kernels as per-warp, per-slot cache-line address
//     streams plus the instruction-level loop body — everything the
//     simulator needs, nothing it derives;
//   - Record, which captures any trace.Pattern-backed workload into a
//     Trace by evaluating its patterns over the launch geometry, and
//     Replay, a trace.Pattern that plays a recorded stream back — so
//     record → replay is bit-identical to the live run, a round trip
//     the tests verify without needing real hardware;
//   - Characterise, which computes the locality signature the paper's
//     analysis runs on (In, per-warp footprint, reuse distance R, the
//     intra-/inter-warp reuse split) directly from a raw trace, so
//     ingested workloads slot into the profiling and sensitivity
//     machinery like calibrated synthetic ones.
//
// ReadAccelSim additionally parses a simplified Accel-Sim/GPGPU-Sim
// style kernel-trace text layout (see accelsim.go), mapping static
// memory PCs to pattern slots, so traces captured from real CUDA
// binaries can be replayed through the simulator.
package traceio

import (
	"fmt"

	"poise/internal/trace"
)

// Trace is one recorded workload: an ordered list of kernel traces.
type Trace struct {
	// Name is the workload name; replayed workloads inherit it. (It is
	// serialised under the "Workload" header key.)
	Name string
	// MemorySensitive carries the catalogue's Pbest>1.4 classification
	// (false for ingested traces until characterised/profiled).
	MemorySensitive bool
	Kernels         []*KernelTrace
}

// KernelTrace is one kernel: its loop body, launch geometry and the
// recorded address streams.
type KernelTrace struct {
	Name string
	// Body is the kernel loop body; memory ops reference Streams by
	// their Slot index.
	Body []trace.Instr
	// Slots is the number of address-stream slots (== len(Streams)).
	Slots int

	WarpsPerBlock    int
	Blocks           int
	MaxWarpsPerSched int
	MaxBlocksPerSM   int

	// WarpIters[g] is global warp g's recorded iteration count
	// (len == WarpsPerBlock*Blocks).
	WarpIters []int

	// Streams[slot][warp] is the recorded line-aligned byte-address
	// stream: the address of access seq is Streams[slot][warp][seq].
	// Recorded streams have exactly WarpIters[warp] entries; ingested
	// (Accel-Sim) streams may be shorter and are replayed cyclically.
	Streams [][][]uint64
}

// TotalWarps returns the kernel's launch width.
func (kt *KernelTrace) TotalWarps() int { return kt.WarpsPerBlock * kt.Blocks }

// MaxIters returns the largest per-warp iteration count.
func (kt *KernelTrace) MaxIters() int {
	max := 1
	for _, it := range kt.WarpIters {
		if it > max {
			max = it
		}
	}
	return max
}

// Validate reports the first structural problem with the trace. A
// valid Trace always builds a valid workload.
func (t *Trace) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("traceio: trace needs a workload name")
	}
	if len(t.Kernels) == 0 {
		return fmt.Errorf("traceio: trace %s has no kernels", t.Name)
	}
	for i, kt := range t.Kernels {
		if kt == nil {
			return fmt.Errorf("traceio: trace %s kernel %d is nil", t.Name, i)
		}
		if err := kt.validate(); err != nil {
			return fmt.Errorf("traceio: trace %s kernel %d (%s): %w", t.Name, i, kt.Name, err)
		}
	}
	return nil
}

// validateGeometry checks the launch-shape fields alone. The format
// reader runs it before allocating stream storage, so a corrupt or
// hostile header cannot overflow TotalWarps (an int multiply) or
// drive absurd allocations.
func (kt *KernelTrace) validateGeometry() error {
	if kt.Name == "" {
		return fmt.Errorf("kernel needs a name")
	}
	if len(kt.Body) == 0 {
		return fmt.Errorf("empty body")
	}
	if kt.WarpsPerBlock <= 0 || kt.Blocks <= 0 {
		return fmt.Errorf("launch geometry %dx%d warps/blocks must be positive",
			kt.WarpsPerBlock, kt.Blocks)
	}
	// Each factor is bounded before the product so the int64 multiply
	// itself cannot wrap (two ~2^31.5 factors would).
	if kt.WarpsPerBlock > maxTotalWarps || kt.Blocks > maxTotalWarps ||
		int64(kt.WarpsPerBlock)*int64(kt.Blocks) > maxTotalWarps {
		return fmt.Errorf("launch of %dx%d warps exceeds the %d-warp limit",
			kt.WarpsPerBlock, kt.Blocks, maxTotalWarps)
	}
	if kt.MaxWarpsPerSched < 0 || kt.MaxBlocksPerSM < 0 {
		return fmt.Errorf("negative occupancy cap")
	}
	if kt.Slots < 0 || kt.Slots > maxSlots {
		return fmt.Errorf("%d slots outside [0,%d]", kt.Slots, maxSlots)
	}
	return nil
}

// usedSlots validates the body's slot references and returns which
// slots memory instructions touch. Shared between the whole-trace
// validator and the streaming ingest (which must reject a referenced
// slot's empty stream as it flows past, without a Trace to validate).
func usedSlots(body []trace.Instr, slots int) ([]bool, error) {
	used := make([]bool, slots)
	for i, ins := range body {
		switch ins.Kind {
		case trace.OpALU:
		case trace.OpLoad, trace.OpStore:
			if ins.Slot < 0 || ins.Slot >= slots {
				return nil, fmt.Errorf("body[%d] references slot %d of %d", i, ins.Slot, slots)
			}
			if ins.Kind == trace.OpLoad && ins.UseDist < 0 {
				return nil, fmt.Errorf("body[%d] negative UseDist", i)
			}
			used[ins.Slot] = true
		default:
			return nil, fmt.Errorf("body[%d] unknown op kind %d", i, ins.Kind)
		}
	}
	return used, nil
}

func (kt *KernelTrace) validate() error {
	if err := kt.validateGeometry(); err != nil {
		return err
	}
	if kt.Slots != len(kt.Streams) {
		return fmt.Errorf("%d slots but %d streams", kt.Slots, len(kt.Streams))
	}
	total := kt.TotalWarps()
	if len(kt.WarpIters) != total {
		return fmt.Errorf("%d WarpIters entries for %d warps", len(kt.WarpIters), total)
	}
	for g, it := range kt.WarpIters {
		if it <= 0 {
			return fmt.Errorf("warp %d has iteration count %d, must be positive", g, it)
		}
	}
	used, err := usedSlots(kt.Body, kt.Slots)
	if err != nil {
		return err
	}
	for s, streams := range kt.Streams {
		if len(streams) != total {
			return fmt.Errorf("slot %d has %d warp streams for %d warps", s, len(streams), total)
		}
		for g, st := range streams {
			if used[s] && len(st) == 0 {
				return fmt.Errorf("slot %d warp %d has an empty stream but the body references it", s, g)
			}
			for j, addr := range st {
				if addr%trace.LineBytes != 0 {
					return fmt.Errorf("slot %d warp %d access %d: address %#x not %d-byte aligned",
						s, g, j, addr, trace.LineBytes)
				}
				if int64(addr/trace.LineBytes) > maxLineIndex {
					return fmt.Errorf("slot %d warp %d access %d: address %#x beyond the format's line-index limit",
						s, g, j, addr)
				}
			}
		}
	}
	return nil
}
