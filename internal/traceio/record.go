package traceio

import (
	"fmt"

	"poise/internal/sim"
	"poise/internal/trace"
)

// RecordOptions tunes Record.
type RecordOptions struct {
	// MaxWarpIters truncates each warp's captured iteration count
	// (0 = record everything). Capped recordings are for preview and
	// characterisation — cheap on huge kernels — not for bit-exact
	// replay, which needs the full streams.
	MaxWarpIters int
}

// Record captures w into a Trace by evaluating every kernel's address
// patterns over the full launch geometry: for each slot and each
// global warp, the per-iteration address stream the simulator would
// observe. Patterns derive addresses only from the launch-geometry
// fields of trace.Ctx (see the Pattern contract), so the recording is
// policy-independent and replaying it reproduces any run bit-for-bit.
func Record(w *sim.Workload) (*Trace, error) {
	return RecordWith(w, RecordOptions{})
}

// RecordWith is Record with options.
func RecordWith(w *sim.Workload, opts RecordOptions) (*Trace, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("traceio: recording: %w", err)
	}
	t := &Trace{Name: w.Name, MemorySensitive: w.MemorySensitive}
	for _, k := range w.Kernels {
		kt, err := recordKernel(k, opts)
		if err != nil {
			return nil, fmt.Errorf("traceio: recording %s: %w", k.Name, err)
		}
		t.Kernels = append(t.Kernels, kt)
	}
	return t, nil
}

func recordKernel(k *trace.Kernel, opts RecordOptions) (*KernelTrace, error) {
	total := k.TotalWarps()
	kt := &KernelTrace{
		Name:             k.Name,
		Body:             append([]trace.Instr(nil), k.Body...),
		Slots:            len(k.Patterns),
		WarpsPerBlock:    k.WarpsPerBlock,
		Blocks:           k.Blocks,
		MaxWarpsPerSched: k.MaxWarpsPerSched,
		MaxBlocksPerSM:   k.MaxBlocksPerSM,
		WarpIters:        make([]int, total),
	}
	for g := 0; g < total; g++ {
		it := k.WarpIters(g)
		if opts.MaxWarpIters > 0 && it > opts.MaxWarpIters {
			it = opts.MaxWarpIters
		}
		kt.WarpIters[g] = it
	}
	kt.Streams = make([][][]uint64, len(k.Patterns))
	for s, p := range k.Patterns {
		kt.Streams[s] = make([][]uint64, total)
		for g := 0; g < total; g++ {
			ctx := trace.Ctx{
				GlobalWarp: g,
				Block:      g / k.WarpsPerBlock,
				WarpInBlk:  g % k.WarpsPerBlock,
			}
			stream := make([]uint64, kt.WarpIters[g])
			for seq := range stream {
				addr := p.Addr(ctx, seq)
				if addr%trace.LineBytes != 0 {
					return nil, fmt.Errorf("slot %d warp %d seq %d: pattern emitted unaligned address %#x",
						s, g, seq, addr)
				}
				stream[seq] = addr
			}
			kt.Streams[s][g] = stream
		}
	}
	return kt, nil
}
