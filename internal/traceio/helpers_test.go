package traceio

import (
	"testing"

	"poise/internal/sim"
	"poise/internal/trace"
)

// miniWorkload builds a tiny two-kernel workload exercising private,
// shared and phased patterns, iteration jitter and a store slot — the
// shapes the format must round-trip. It is the source of the committed
// testdata/mini.ptrace.gz golden fixture (see TestGoldenFixture).
func miniWorkload() *sim.Workload {
	b := &trace.BodyBuilder{}
	b.Load(1)
	b.ALU(2)
	b.Load(1)
	b.ALU(1)
	b.Store()
	k1 := &trace.Kernel{
		Name: "mini#0",
		Body: b.Body(),
		Patterns: []trace.Pattern{
			trace.PrivateSweep{Region: 11, Lines: 6, Step: 1},
			trace.SharedSweep{Region: 12, Lines: 10, Step: 1, Lag: 1},
			trace.Stream{Region: 13, WrapLines: 64},
		},
		Iters:         8,
		WarpsPerBlock: 2,
		Blocks:        2,
		Seed:          3,
	}
	b2 := &trace.BodyBuilder{}
	b2.Load(1)
	b2.ALU(3)
	k2 := &trace.Kernel{
		Name: "mini#1",
		Body: b2.Body(),
		Patterns: []trace.Pattern{
			trace.Phased{
				SwitchAt: 4,
				A:        trace.IrregularPrivate{Region: 14, Lines: 5, Seed: 0x77},
				B:        trace.IrregularShared{Region: 15, Lines: 12, Seed: 0x78, Cluster: 2},
			},
		},
		Iters:         9,
		IterJitter:    0.4,
		WarpsPerBlock: 2,
		Blocks:        2,
		Seed:          5,
	}
	return &sim.Workload{Name: "mini", Kernels: []*trace.Kernel{k1, k2}, MemorySensitive: true}
}

func mustRecord(t *testing.T, w *sim.Workload) *Trace {
	t.Helper()
	tr, err := Record(w)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
