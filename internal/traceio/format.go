package traceio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"poise/internal/trace"
)

// The "poisetrace" container format, version 1:
//
//	magic   "POISETRACE\n"                      (11 bytes)
//	uvarint version                             (currently 1)
//	uvarint headerLen, headerLen bytes of JSON  (launch geometry + body)
//	streams for each kernel (header order),
//	        for each slot 0..Slots-1,
//	        for each warp 0..TotalWarps-1:
//	          uvarint count
//	          count × zigzag-varint deltas of cache-line indices
//	          (address/LineBytes; first delta is relative to 0)
//	trailer "POISEEND"                          (8 bytes, then EOF)
//
// Per-warp streams are delta-encoded at line granularity, so sweeps
// and streams compress to a byte or two per access and the whole file
// gzips well; pass WriteOptions.Gzip (or a .gz path to WriteFile) to
// compress on the way out. Read transparently detects gzip input.
const (
	formatMagic   = "POISETRACE\n"
	formatTrailer = "POISEEND"
	formatVersion = 1

	// maxHeaderLen bounds the JSON header a reader will allocate for, so
	// a corrupt length prefix cannot OOM the process.
	maxHeaderLen = 16 << 20
	// maxStreamLen bounds one per-warp stream's element count.
	maxStreamLen = 1 << 28
	// maxLineIndex keeps line*LineBytes inside uint64 (the synthetic
	// pattern regions sit just below 2^62, i.e. line indices near 2^55).
	// Validate enforces the same bound on addresses, so Write never
	// produces a container Read refuses.
	maxLineIndex = int64(1) << 56

	// maxTotalWarps / maxSlots bound the launch geometry a trace may
	// declare, so a corrupt or hostile header cannot drive the
	// pre-stream allocations (or TotalWarps overflow) before the
	// per-stream limits kick in. 4M warps is ~64x the largest real
	// GPU launch the simulator would ever see.
	maxTotalWarps = 1 << 22
	maxSlots      = 1 << 16
)

// header is the JSON-encoded metadata block of a trace file. It
// mirrors Trace minus the address streams.
type header struct {
	Workload        string
	MemorySensitive bool `json:",omitempty"`
	Kernels         []kernelHeader
}

type kernelHeader struct {
	Name             string
	Body             []instrSpec
	Slots            int
	WarpsPerBlock    int
	Blocks           int
	MaxWarpsPerSched int `json:",omitempty"`
	MaxBlocksPerSM   int `json:",omitempty"`
	WarpIters        []int
}

// instrSpec is the serialised form of one trace.Instr. Kind is a
// string so files stay self-describing and stable across refactors of
// the OpKind enum.
type instrSpec struct {
	Kind    string
	Slot    int  `json:",omitempty"`
	UseDist int  `json:",omitempty"`
	DepALU  bool `json:",omitempty"`
}

func toSpec(ins trace.Instr) instrSpec {
	s := instrSpec{Slot: ins.Slot, UseDist: ins.UseDist, DepALU: ins.DepALU}
	switch ins.Kind {
	case trace.OpALU:
		s.Kind = "alu"
	case trace.OpLoad:
		s.Kind = "load"
	case trace.OpStore:
		s.Kind = "store"
	default:
		s.Kind = fmt.Sprintf("op%d", ins.Kind)
	}
	return s
}

func (s instrSpec) instr() (trace.Instr, error) {
	ins := trace.Instr{Slot: s.Slot, UseDist: s.UseDist, DepALU: s.DepALU}
	switch s.Kind {
	case "alu":
		ins.Kind = trace.OpALU
	case "load":
		ins.Kind = trace.OpLoad
	case "store":
		ins.Kind = trace.OpStore
	default:
		return ins, fmt.Errorf("unknown instruction kind %q", s.Kind)
	}
	return ins, nil
}

// WriteOptions configures Write.
type WriteOptions struct {
	// Gzip compresses the container.
	Gzip bool
}

// Write serialises t to w in the poisetrace v1 format.
func Write(w io.Writer, t *Trace, opts WriteOptions) error {
	if err := t.Validate(); err != nil {
		return err
	}
	out := w
	var gz *gzip.Writer
	if opts.Gzip {
		gz = gzip.NewWriter(w)
		out = gz
	}
	bw := bufio.NewWriter(out)

	hdr := header{Workload: t.Name, MemorySensitive: t.MemorySensitive}
	for _, kt := range t.Kernels {
		kh := kernelHeader{
			Name:             kt.Name,
			Slots:            kt.Slots,
			WarpsPerBlock:    kt.WarpsPerBlock,
			Blocks:           kt.Blocks,
			MaxWarpsPerSched: kt.MaxWarpsPerSched,
			MaxBlocksPerSM:   kt.MaxBlocksPerSM,
			WarpIters:        kt.WarpIters,
		}
		for _, ins := range kt.Body {
			kh.Body = append(kh.Body, toSpec(ins))
		}
		hdr.Kernels = append(hdr.Kernels, kh)
	}
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("traceio: encoding header: %w", err)
	}

	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:n])
		return err
	}
	if _, err := bw.WriteString(formatMagic); err != nil {
		return err
	}
	if err := putUvarint(formatVersion); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(hdrJSON))); err != nil {
		return err
	}
	if _, err := bw.Write(hdrJSON); err != nil {
		return err
	}
	for _, kt := range t.Kernels {
		for _, slot := range kt.Streams {
			for _, stream := range slot {
				if err := putUvarint(uint64(len(stream))); err != nil {
					return err
				}
				prev := int64(0)
				for _, addr := range stream {
					line := int64(addr / trace.LineBytes)
					delta := line - prev
					prev = line
					n := binary.PutVarint(scratch[:], delta)
					if _, err := bw.Write(scratch[:n]); err != nil {
						return err
					}
				}
			}
		}
	}
	if _, err := bw.WriteString(formatTrailer); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if gz != nil {
		return gz.Close()
	}
	return nil
}

// Read parses a poisetrace container from r, transparently unwrapping
// gzip. It is strict: malformed input of any kind — truncation, a bad
// magic or version, corrupt varints, stream/geometry mismatches —
// returns an error and never panics.
//
// Read is a collect-all wrapper over Scanner: the streaming reader is
// the single implementation of the format, so Read and a Scanner loop
// agree on every input's error-vs-success verdict by construction.
// Callers that do not need the whole trace in memory should use
// NewScanner (or ReadWorkload) directly.
func Read(r io.Reader) (*Trace, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: sc.Name(), MemorySensitive: sc.MemorySensitive()}
	for i := range sc.Kernels() {
		m := &sc.Kernels()[i]
		kt := &KernelTrace{
			Name:             m.Name,
			Body:             m.Body,
			Slots:            m.Slots,
			WarpsPerBlock:    m.WarpsPerBlock,
			Blocks:           m.Blocks,
			MaxWarpsPerSched: m.MaxWarpsPerSched,
			MaxBlocksPerSM:   m.MaxBlocksPerSM,
			WarpIters:        m.WarpIters,
		}
		total := m.TotalWarps()
		kt.Streams = make([][][]uint64, kt.Slots)
		for s := range kt.Streams {
			kt.Streams[s] = make([][]uint64, total)
		}
		t.Kernels = append(t.Kernels, kt)
	}
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		stream := make([]uint64, len(rec.Addrs))
		copy(stream, rec.Addrs)
		t.Kernels[rec.Kernel].Streams[rec.Slot][rec.Warp] = stream
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// badEOF converts the io.EOF that varint/ReadFull readers return on a
// clean cut into io.ErrUnexpectedEOF: mid-container EOF is always
// truncation from the caller's point of view.
func badEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// printable clips b for error messages.
func printable(b []byte) string {
	const max = 16
	if len(b) > max {
		b = b[:max]
	}
	return string(b)
}
