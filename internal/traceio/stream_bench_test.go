package traceio

import (
	"bytes"
	"testing"

	"poise/internal/trace"
)

// benchContainer serialises the synthetic benchmark trace once: one
// kernel, 2048 warps × 64 addresses.
func benchContainer(b *testing.B) []byte {
	b.Helper()
	tr := syntheticTrace(b, 8, 256, 64)
	var buf bytes.Buffer
	if err := Write(&buf, tr, WriteOptions{}); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkReadStream drains a Scanner without retaining records — the
// bounded-memory ingest path's decode cost.
func BenchmarkReadStream(b *testing.B) {
	data := benchContainer(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc, err := NewScanner(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := sc.Next(); !ok {
				break
			}
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadWhole materialises the full Trace for comparison — the
// collect-all wrapper's cost over the same bytes.
func BenchmarkReadWhole(b *testing.B) {
	data := benchContainer(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRecords builds the per-warp streams the replay construction
// benchmarks consume: 2048 warps × 64 addresses with per-warp overlap.
func benchRecords() [][]uint64 {
	records := make([][]uint64, 2048)
	for g := range records {
		stream := make([]uint64, 64)
		for j := range stream {
			stream[j] = uint64((g*7+j)%4096) * trace.LineBytes
		}
		records[g] = stream
	}
	return records
}

// nestedReplay is the pre-flat slice-of-slices layout, kept as the
// benchmark baseline: one retained slice per warp, footprint from the
// same clear-per-warp scratch set.
type nestedReplay struct {
	warps     [][]uint64
	footprint int
}

func newNestedReplay(records [][]uint64) *nestedReplay {
	r := &nestedReplay{warps: make([][]uint64, len(records))}
	distinct := map[uint64]struct{}{}
	var sum, counted int
	for g, stream := range records {
		// The streaming source yields a reused buffer, so retaining the
		// nested layout forces one copy (and one allocation) per warp.
		r.warps[g] = append([]uint64(nil), stream...)
		if len(stream) == 0 {
			continue
		}
		clear(distinct)
		for _, a := range stream {
			distinct[a] = struct{}{}
		}
		sum += len(distinct)
		counted++
	}
	if counted > 0 {
		r.footprint = (sum + counted - 1) / counted
	}
	return r
}

func (r *nestedReplay) addr(c trace.Ctx, seq int) uint64 {
	if len(r.warps) == 0 {
		return 0
	}
	g := c.GlobalWarp
	if g < 0 || g >= len(r.warps) {
		g = ((g % len(r.warps)) + len(r.warps)) % len(r.warps)
	}
	stream := r.warps[g]
	if len(stream) == 0 {
		return 0
	}
	if seq < 0 || seq >= len(stream) {
		seq = ((seq % len(stream)) + len(stream)) % len(stream)
	}
	return stream[seq]
}

// BenchmarkReplayFlat measures building one slot's flat replay from
// streamed records: one arena + one offset index however many warps.
func BenchmarkReplayFlat(b *testing.B) {
	records := benchRecords()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var addrs int
		for _, stream := range records {
			addrs += len(stream)
		}
		builder := NewReplayBuilder("bench", len(records), addrs)
		for _, stream := range records {
			builder.Warp(stream)
		}
		if _, err := builder.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayNested is the slice-of-slices baseline for the same
// construction: one retained allocation per warp.
func BenchmarkReplayNested(b *testing.B) {
	records := benchRecords()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = newNestedReplay(records)
	}
}

// BenchmarkReplayFlatAddr exercises the replay hot path — the address
// lookup behind every simulated memory access — on the flat arena.
func BenchmarkReplayFlatAddr(b *testing.B) {
	rep, err := NewReplay("bench", benchRecords())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += rep.Addr(trace.Ctx{GlobalWarp: i & 2047}, i&63)
	}
	benchSink = sink
}

// BenchmarkReplayNestedAddr is the pointer-chasing baseline lookup.
func BenchmarkReplayNestedAddr(b *testing.B) {
	rep := newNestedReplay(benchRecords())
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += rep.addr(trace.Ctx{GlobalWarp: i & 2047}, i&63)
	}
	benchSink = sink
}

var benchSink uint64
