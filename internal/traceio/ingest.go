package traceio

import (
	"fmt"
	"io"

	"poise/internal/sim"
	"poise/internal/trace"
)

// ReadWorkload streams a poisetrace container from r straight into a
// runnable sim.Workload backed by flat Replay arenas, computing the
// locality Signature in the same ingest pass. The file is decoded
// exactly once: each per-warp record flows from the Scanner into its
// slot's arena (one allocation per slot) as it arrives, the footprint
// accumulates alongside, and the signature is computed from the
// retained arenas — a whole Trace is never materialised, so peak
// memory is the replay data itself, not the container.
//
// The result is equivalent to Read → Trace.Workload → Characterise:
// the same validation (streamed inputs Read rejects, ReadWorkload
// rejects), the same replay patterns, and a DeepEqual-identical
// Signature — the round-trip tests pin all three. A nil opts skips
// the characterisation scan entirely (zero Signature) for callers
// that only want the workload.
func ReadWorkload(r io.Reader, opts *CharacteriseOptions) (*sim.Workload, Signature, error) {
	sc, err := NewScanner(r)
	if err != nil {
		return nil, Signature{}, err
	}
	name := sc.Name()
	if name == "" {
		return nil, Signature{}, fmt.Errorf("traceio: trace needs a workload name")
	}
	metas := sc.Kernels()
	if len(metas) == 0 {
		return nil, Signature{}, fmt.Errorf("traceio: trace %s has no kernels", name)
	}

	// Launch-shape checks the Scanner leaves to the caller (it validates
	// geometry; iteration counts and body slot references are workload
	// concerns), mirroring KernelTrace.validate.
	kerr := func(ki int, format string, args ...any) error {
		return fmt.Errorf("traceio: trace %s kernel %d (%s): %s",
			name, ki, metas[ki].Name, fmt.Sprintf(format, args...))
	}
	used := make([][]bool, len(metas))
	for ki := range metas {
		m := &metas[ki]
		total := m.TotalWarps()
		if len(m.WarpIters) != total {
			return nil, Signature{}, kerr(ki, "%d WarpIters entries for %d warps", len(m.WarpIters), total)
		}
		for g, it := range m.WarpIters {
			if it <= 0 {
				return nil, Signature{}, kerr(ki, "warp %d has iteration count %d, must be positive", g, it)
			}
		}
		u, err := usedSlots(m.Body, m.Slots)
		if err != nil {
			return nil, Signature{}, kerr(ki, "%v", err)
		}
		used[ki] = u
	}

	// Drain the stream into one builder per (kernel, slot). Records
	// arrive kernel-major, slot, then warp — the arena append order —
	// so a single active builder suffices.
	reps := make([][]*Replay, len(metas))
	var cur *ReplayBuilder
	curK, curSlot := -1, -1
	seal := func() error {
		if cur == nil {
			return nil
		}
		rep, err := cur.Finish()
		if err != nil {
			return err
		}
		reps[curK] = append(reps[curK], rep)
		cur = nil
		return nil
	}
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		if rec.Kernel != curK || rec.Slot != curSlot {
			if err := seal(); err != nil {
				return nil, Signature{}, err
			}
			m := &metas[rec.Kernel]
			cur = NewReplayBuilder(fmt.Sprintf("%s/slot%d", m.Name, rec.Slot), m.TotalWarps(), 0)
			curK, curSlot = rec.Kernel, rec.Slot
		}
		if len(rec.Addrs) == 0 && used[rec.Kernel][rec.Slot] {
			return nil, Signature{}, kerr(rec.Kernel,
				"slot %d warp %d has an empty stream but the body references it", rec.Slot, rec.Warp)
		}
		cur.Warp(rec.Addrs)
	}
	if err := sc.Err(); err != nil {
		return nil, Signature{}, err
	}
	if err := seal(); err != nil {
		return nil, Signature{}, err
	}

	w := &sim.Workload{Name: name, MemorySensitive: sc.MemorySensitive()}
	views := make([]kernelView, len(metas))
	for ki := range metas {
		m := &metas[ki]
		if len(reps[ki]) != m.Slots {
			return nil, Signature{}, kerr(ki, "%d slots but %d streamed", m.Slots, len(reps[ki]))
		}
		pats := make([]trace.Pattern, m.Slots)
		for s, rep := range reps[ki] {
			pats[s] = rep
		}
		k, err := kernelFromMeta(m.Name, m.Body, m.WarpsPerBlock, m.Blocks,
			m.MaxWarpsPerSched, m.MaxBlocksPerSM, m.WarpIters, m.MaxIters(), pats)
		if err != nil {
			return nil, Signature{}, err
		}
		w.Kernels = append(w.Kernels, k)
		kreps := reps[ki]
		views[ki] = kernelView{
			body:       m.Body,
			warpIters:  m.WarpIters,
			totalWarps: m.TotalWarps(),
			maxIters:   m.MaxIters(),
			stream:     func(s, g int) []uint64 { return kreps[s].warpStream(g) },
		}
	}
	if opts == nil {
		return w, Signature{}, nil
	}
	return w, signatureOf(name, views, *opts), nil
}
