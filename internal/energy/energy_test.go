package energy

import (
	"testing"

	"poise/internal/cache"
	"poise/internal/sim"
)

func resultWith(cycles, instr, l1, l2, dram, flits int64) sim.WorkloadResult {
	return sim.WorkloadResult{
		Cycles:       cycles,
		Instructions: instr,
		L1:           cache.Stats{Accesses: l1},
		L2Acc:        l2,
		DRAMAcc:      dram,
		NoCReqFlits:  flits / 2,
		NoCRespFlits: flits - flits/2,
	}
}

func TestBreakdownComponents(t *testing.T) {
	m := Default()
	r := resultWith(1_000_000, 5_000_000, 1_000_000, 200_000, 50_000, 800_000)
	b := m.OfWorkload(r, 32)
	if b.Total() <= 0 {
		t.Fatal("total energy must be positive")
	}
	for name, v := range map[string]float64{
		"instr": b.InstrMJ, "l1": b.L1MJ, "l2": b.L2MJ,
		"dram": b.DRAMMJ, "noc": b.NoCMJ, "leak": b.LeakageMJ,
	} {
		if v <= 0 {
			t.Fatalf("component %s must be positive", name)
		}
	}
	sum := b.InstrMJ + b.L1MJ + b.L2MJ + b.DRAMMJ + b.NoCMJ + b.LeakageMJ
	if d := b.Total() - sum; d > 1e-12 || d < -1e-12 {
		t.Fatal("Total must equal the component sum")
	}
}

func TestLeakageScalesWithCyclesAndSMs(t *testing.T) {
	m := Default()
	short := m.OfWorkload(resultWith(1_000_000, 1, 1, 1, 1, 1), 32)
	long := m.OfWorkload(resultWith(2_000_000, 1, 1, 1, 1, 1), 32)
	if long.LeakageMJ <= short.LeakageMJ {
		t.Fatal("leakage must grow with runtime")
	}
	small := m.OfWorkload(resultWith(1_000_000, 1, 1, 1, 1, 1), 8)
	if small.LeakageMJ >= short.LeakageMJ {
		t.Fatal("leakage must scale down with fewer SMs")
	}
	if small.LeakageMJ*4 < short.LeakageMJ*0.99 || small.LeakageMJ*4 > short.LeakageMJ*1.01 {
		t.Fatal("leakage must scale linearly in SM count")
	}
}

func TestDRAMDominatesDataMovement(t *testing.T) {
	// The paper's energy argument: off-chip accesses dominate data
	// movement. Per access, DRAM must cost far more than L1/L2.
	m := Default()
	if m.DRAMNJ < 10*m.L2AccessNJ || m.DRAMNJ < 50*m.L1AccessNJ {
		t.Fatalf("DRAM energy must dominate: dram=%v l2=%v l1=%v",
			m.DRAMNJ, m.L2AccessNJ, m.L1AccessNJ)
	}
}

func TestFasterRunWithFewerDRAMAccessesSavesEnergy(t *testing.T) {
	// The Poise-vs-GTO shape of Fig. 14: same instruction count, fewer
	// cycles and fewer off-chip accesses, lower total energy.
	m := Default()
	gto := m.OfWorkload(resultWith(4_000_000, 3_000_000, 1_000_000, 900_000, 500_000, 5_000_000), 8)
	poise := m.OfWorkload(resultWith(2_000_000, 3_000_000, 1_000_000, 500_000, 150_000, 2_000_000), 8)
	if poise.Total() >= gto.Total() {
		t.Fatalf("faster run with less traffic must save energy: %v vs %v",
			poise.Total(), gto.Total())
	}
}
