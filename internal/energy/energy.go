// Package energy estimates GPU energy consumption from simulation event
// counts, standing in for the GPUWattch model the paper uses (§VII-I).
// The estimate has the two components the paper's energy argument rests
// on: dynamic energy proportional to work (instructions, cache and DRAM
// accesses, NoC flits — data movement dominates) and leakage
// proportional to runtime. Poise's savings come from fewer off-chip
// accesses (less data movement) and faster execution (less leakage);
// both fall out of the breakdown below.
package energy

import "poise/internal/sim"

// Model holds per-event energies in nanojoules and leakage in watts.
// Defaults approximate published per-operation energies for a 28 nm
// GPU-class chip; only relative magnitudes matter for the reproduction.
type Model struct {
	InstrNJ    float64 // per executed warp instruction (datapath + RF)
	L1AccessNJ float64 // per L1 probe
	L2AccessNJ float64 // per L2 bank access
	DRAMNJ     float64 // per 128 B DRAM access (the data-movement term)
	NoCFlitNJ  float64 // per 32 B crossbar flit
	LeakageW   float64 // whole-chip leakage+constant power at 32 SMs
	CoreGHz    float64 // core clock, to convert cycles to seconds
	BaseSMs    int     // SM count the leakage figure corresponds to
}

// Default returns the calibrated model.
func Default() Model {
	return Model{
		InstrNJ:    0.25,
		L1AccessNJ: 0.08,
		L2AccessNJ: 0.30,
		DRAMNJ:     8.0,
		NoCFlitNJ:  0.10,
		LeakageW:   45,
		CoreGHz:    1.4,
		BaseSMs:    32,
	}
}

// Breakdown is the energy estimate of one run, in millijoules.
type Breakdown struct {
	InstrMJ   float64
	L1MJ      float64
	L2MJ      float64
	DRAMMJ    float64
	NoCMJ     float64
	LeakageMJ float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.InstrMJ + b.L1MJ + b.L2MJ + b.DRAMMJ + b.NoCMJ + b.LeakageMJ
}

const nj2mj = 1e-6

// OfWorkload estimates the energy of a workload run on nSMs SMs.
// Leakage scales with the SM count so scaled-down simulations stay
// comparable.
func (m Model) OfWorkload(r sim.WorkloadResult, nSMs int) Breakdown {
	seconds := float64(r.Cycles) / (m.CoreGHz * 1e9)
	leakW := m.LeakageW
	if m.BaseSMs > 0 && nSMs > 0 {
		leakW = m.LeakageW * float64(nSMs) / float64(m.BaseSMs)
	}
	return Breakdown{
		InstrMJ:   float64(r.Instructions) * m.InstrNJ * nj2mj,
		L1MJ:      float64(r.L1.Accesses) * m.L1AccessNJ * nj2mj,
		L2MJ:      float64(r.L2Acc) * m.L2AccessNJ * nj2mj,
		DRAMMJ:    float64(r.DRAMAcc) * m.DRAMNJ * nj2mj,
		NoCMJ:     float64(r.NoCReqFlits+r.NoCRespFlits) * m.NoCFlitNJ * nj2mj,
		LeakageMJ: leakW * seconds * 1e3,
	}
}
