// Solutionspace: profile a kernel across the whole {N, p} space and
// print the landscape the paper's Fig. 2 dissects — where the CCWS
// diagonal peak sits, where a hill-climb gets stuck, and where the
// global optimum actually is.
//
//	go run ./examples/solutionspace [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"poise"
)

func main() {
	name := "ii"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	cfg := poise.DefaultConfig().Scale(8)
	w := poise.Workloads(poise.Small).Must(name)
	k := w.Kernels[0]

	fmt.Printf("profiling %s across the {N, p} space (this sweeps ~80 simulations)...\n\n", k.Name)
	pr, err := poise.SweepSolutionSpace(cfg, k, 2, 2)
	if err != nil {
		log.Fatal(err)
	}

	best := pr.Best()
	diag := pr.BestDiagonal()

	// ASCII bubble plot: rows are p (top = high), columns are N.
	grid := make([][]byte, pr.MaxN+1)
	for p := range grid {
		grid[p] = []byte(strings.Repeat(" ", pr.MaxN+1))
	}
	for _, pt := range pr.Points {
		ch := byte('.')
		switch {
		case pt.Speedup >= 1.25:
			ch = '#'
		case pt.Speedup >= 1.05:
			ch = '+'
		case pt.Speedup <= 0.95:
			ch = '-'
		}
		grid[pt.P][pt.N] = ch
	}
	grid[best.P][best.N] = 'M'
	grid[diag.P][diag.N] = 'C'
	fmt.Println(" p")
	for p := pr.MaxN; p >= 1; p-- {
		fmt.Printf("%2d |%s\n", p, string(grid[p][1:]))
	}
	fmt.Printf("   +%s N\n", strings.Repeat("-", pr.MaxN))
	fmt.Println("    # >=1.25x   + >=1.05x   . ~1.0x   - slowdown")
	fmt.Println("    M global optimum        C best diagonal (CCWS/SWL reach)")

	fmt.Printf("\nbaseline (%d,%d): IPC %.3f\n", pr.MaxN, pr.MaxN, pr.Baseline.IPC)
	fmt.Printf("CCWS/SWL best (%d,%d): %.3fx\n", diag.N, diag.P, diag.Speedup)
	fmt.Printf("global best   (%d,%d): %.3fx", best.N, best.P, best.Speedup)
	if best.Speedup > diag.Speedup*1.02 {
		fmt.Printf("  <- decoupling p from N pays off (the PCAL/Poise premise)")
	}
	fmt.Println()
}
