// Casestudy: the paper's Fig. 17 walkthrough on the unseen bfs
// workload — overlay the tuples Poise chooses at runtime on the
// statically profiled {N, p} landscape to see whether the predictions
// land in the high-performance zone.
//
//	go run ./examples/casestudy
package main

import (
	"fmt"
	"log"
	"strings"

	"poise"
)

func main() {
	h := poise.NewHarness(poise.HarnessOptions{
		SMs:      8,
		CacheDir: ".poise-cache",
	})

	fmt.Println("profiling bfs statically and running Poise on it (unseen during training)...")
	res, err := h.Fig17()
	if err != nil {
		log.Fatal(err)
	}

	pr := res.Profile
	grid := make([][]byte, pr.MaxN+1)
	for p := range grid {
		grid[p] = []byte(strings.Repeat(" ", pr.MaxN+1))
	}
	for _, pt := range pr.Points {
		ch := byte('.')
		switch {
		case pt.Speedup >= 1.10:
			ch = '#'
		case pt.Speedup >= 1.02:
			ch = '+'
		case pt.Speedup <= 0.95:
			ch = '-'
		}
		grid[pt.P][pt.N] = ch
	}
	// Overlay runtime decisions: o = converged tuple, * = raw prediction.
	for _, ev := range res.Converged {
		if ev.P >= 1 && ev.P <= pr.MaxN && ev.N >= 1 && ev.N <= pr.MaxN {
			grid[ev.P][ev.N] = 'o'
		}
	}
	for _, ev := range res.Predicted {
		if ev.P >= 1 && ev.P <= pr.MaxN && ev.N >= 1 && ev.N <= pr.MaxN {
			grid[ev.P][ev.N] = '*'
		}
	}

	fmt.Println("\nstatic profile with Poise's runtime tuples overlaid:")
	fmt.Println(" p")
	for p := pr.MaxN; p >= 1; p-- {
		fmt.Printf("%2d |%s\n", p, string(grid[p][1:]))
	}
	fmt.Printf("   +%s N\n", strings.Repeat("-", pr.MaxN))
	fmt.Println("    profile: # >=1.10x  + >=1.02x  . ~1x  - slowdown")
	fmt.Println("    runtime: * prediction  o after local search")

	best := pr.Best()
	fmt.Printf("\nstatic optimum (%d,%d) at %.3fx; %d predictions, %d searches\n",
		best.N, best.P, best.Speedup, len(res.Predicted), len(res.Converged))
}
