// Training: run the full offline learning pipeline — profile the
// training workloads across the {N, p} space, score targets with the
// Eq. 12 neighbourhood scoring, scale them to the uniform 24-warp
// space, and fit the two Negative Binomial link functions — then show
// the learned weights (this repository's Table II analogue) and test a
// prediction on an unseen workload.
//
//	go run ./examples/training
//
// Expect a couple of minutes on first run; profiles are cached under
// .poise-cache afterwards.
package main

import (
	"fmt"
	"log"

	"poise"
)

func main() {
	cfg := poise.DefaultConfig().Scale(8)

	fmt.Println("training on gco/pvr/ccl (the evaluation set stays unseen)...")
	w, err := poise.Train(cfg, poise.Small, poise.TrainOptions{
		StepN:    3,
		StepP:    3,
		CacheDir: ".poise-cache",
		Drop:     -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nlearned link functions over %d kernels (ln N = a.x, ln p = b.x):\n\n", w.TrainKernels)
	names := []string{"ho", "h'", "eta_o", "eta'", "(d-eta)^2", "In(d-eta)^2", "AML term", "1"}
	fmt.Printf("  %-12s %12s %12s\n", "feature", "alpha (N)", "beta (p)")
	for i, n := range names {
		fmt.Printf("  %-12s %+12.6f %+12.6f\n", n, w.Alpha[i], w.Beta[i])
	}
	fmt.Printf("\npseudo-R2: N %.3f, p %.3f\n", w.PseudoR2N, w.PseudoR2P)

	// Use the model on an unseen workload: run Poise end to end.
	spec := poise.PolicySpec{Name: "poise", Weights: &w}
	pol, err := poise.NewPolicy(spec)
	if err != nil {
		log.Fatal(err)
	}
	target := poise.Workloads(poise.Small).Must("mm")
	gto, _ := poise.NewPolicy(poise.PolicySpec{Name: "gto"})
	base, err := poise.Run(cfg, target, gto)
	if err != nil {
		log.Fatal(err)
	}
	res, err := poise.Run(cfg, target, pol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunseen workload %s: GTO IPC %.3f -> Poise IPC %.3f (%.2fx)\n",
		target.Name, base.IPC, res.IPC, res.IPC/base.IPC)
}
