// Quickstart: simulate one memory-sensitive workload under the GTO
// baseline and under Poise, and compare the headline metrics — the
// 30-second tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"poise"
)

func main() {
	// An 8-SM GPU with the paper's per-SM organisation and a
	// proportionally scaled shared memory system.
	cfg := poise.DefaultConfig().Scale(8)

	// The synthetic stand-in for the paper's MapReduce inverted-index
	// benchmark: strong intra-warp locality that full TLP thrashes away.
	workload := poise.Workloads(poise.Small).Must("ii")

	gto, err := poise.NewPolicy(poise.PolicySpec{Name: "gto"})
	if err != nil {
		log.Fatal(err)
	}
	base, err := poise.Run(cfg, workload, gto)
	if err != nil {
		log.Fatal(err)
	}

	// Poise with the shipped model (trained offline on the disjoint
	// gco/pvr/ccl set — ii was never seen during training).
	pp, err := poise.NewPolicy(poise.PolicySpec{Name: "poise"})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := poise.Run(cfg, workload, pp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s (%d kernels)\n\n", workload.Name, len(workload.Kernels))
	fmt.Printf("%-14s %10s %10s\n", "", "GTO", "Poise")
	fmt.Printf("%-14s %10.3f %10.3f\n", "IPC", base.IPC, opt.IPC)
	fmt.Printf("%-14s %9.1f%% %9.1f%%\n", "L1 hit rate", 100*base.L1HitRate(), 100*opt.L1HitRate())
	fmt.Printf("%-14s %10.0f %10.0f\n", "AML (cycles)", base.AML, opt.AML)
	fmt.Printf("%-14s %10d %10d\n", "DRAM accesses", base.DRAMAcc, opt.DRAMAcc)
	fmt.Printf("\nspeedup: %.2fx\n", opt.IPC/base.IPC)
}
