package poise_test

import (
	"testing"

	"poise/internal/poise"
	"poise/internal/sim"
)

// Ablation benchmarks for the design choices DESIGN.md calls out beyond
// the paper's own figures: the fallback guard and the pure-prediction
// mode, measured on one throttle-friendly workload (ii) and one
// TLP-loving workload (kmeans) where the two mechanisms pull in
// opposite directions.

func ablationRun(b *testing.B, workload string, mutate func(*poise.Policy)) float64 {
	b.Helper()
	h := benchHarness()
	w := h.Cat.Must(workload)
	gto, err := h.RunWorkload(w, sim.GTO{})
	if err != nil {
		b.Fatal(err)
	}
	pol, err := h.PoisePolicy()
	if err != nil {
		b.Fatal(err)
	}
	if mutate != nil {
		mutate(pol)
	}
	res, err := h.RunWorkload(w, pol)
	if err != nil {
		b.Fatal(err)
	}
	if gto.IPC == 0 {
		return 0
	}
	return res.IPC / gto.IPC
}

// BenchmarkAblationFallbackGuard compares the paper-exact HIE
// (NoFallback) with the guarded one on the workload class the guard
// exists for.
func BenchmarkAblationFallbackGuard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		guarded := ablationRun(b, "kmeans", nil)
		pure := ablationRun(b, "kmeans", func(p *poise.Policy) { p.NoFallback = true })
		b.ReportMetric(guarded, "kmeans-guarded-x")
		b.ReportMetric(pure, "kmeans-paperexact-x")
	}
}

// BenchmarkAblationGuardCostOnWins verifies the guard does not tax the
// workloads Poise is built for.
func BenchmarkAblationGuardCostOnWins(b *testing.B) {
	for i := 0; i < b.N; i++ {
		guarded := ablationRun(b, "ii", nil)
		pure := ablationRun(b, "ii", func(p *poise.Policy) { p.NoFallback = true })
		b.ReportMetric(guarded, "ii-guarded-x")
		b.ReportMetric(pure, "ii-paperexact-x")
	}
}

// BenchmarkAblationLocalSearch isolates the local search's contribution
// on top of raw predictions (the Fig. 11 (0,0) point, per workload).
func BenchmarkAblationLocalSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		withSearch := ablationRun(b, "mm", nil)
		noSearch := ablationRun(b, "mm", func(p *poise.Policy) { p.DisableSearch = true })
		b.ReportMetric(withSearch, "mm-search-x")
		b.ReportMetric(noSearch, "mm-predictonly-x")
	}
}
