package poise_test

import (
	"testing"

	"poise"
)

func tinyCfg() poise.Config { return poise.DefaultConfig().Scale(2) }

func TestFacadeRunGTO(t *testing.T) {
	w := poise.Workloads(poise.Small).Must("wc")
	pol, err := poise.NewPolicy(poise.PolicySpec{Name: "gto"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := poise.Run(tinyCfg(), w, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Instructions == 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestFacadePolicies(t *testing.T) {
	for _, name := range []string{"gto", "fixed", "ccws", "apcm", "random-restart", "poise"} {
		spec := poise.PolicySpec{Name: name, N: 4, P: 2, Seed: 1}
		pol, err := poise.NewPolicy(spec)
		if err != nil {
			if name == "poise" {
				t.Skipf("no embedded weights: %v", err)
			}
			t.Fatalf("%s: %v", name, err)
		}
		if pol.Name() == "" {
			t.Fatalf("%s: empty policy name", name)
		}
	}
	if _, err := poise.NewPolicy(poise.PolicySpec{Name: "bogus"}); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestFacadeProfileBackedPolicies(t *testing.T) {
	w := poise.Workloads(poise.Small).Must("wc")
	k := w.Kernels[0]
	pr, err := poise.SweepSolutionSpace(tinyCfg(), k, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	profs := map[string]*poise.Profile{k.Name: pr}
	for _, name := range []string{"swl", "static-best", "pcal-swl"} {
		pol, err := poise.NewPolicy(poise.PolicySpec{Name: name, Profiles: profs})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := poise.Run(tinyCfg(), w, pol); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
	}
}

func TestFacadeDefaults(t *testing.T) {
	if err := poise.DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := poise.DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := poise.TrainedWeights(); !ok {
		t.Skip("no embedded weights in this build")
	}
}
