module poise

go 1.24
